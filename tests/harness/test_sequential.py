"""Tests for sequential statistical injection (tier-1).

Covers the estimator layer (streaming moments, interval half-widths,
the stopping rule), the stratified batch plan, the controller's
edge-case decisions (small strata, zero variance, ceilings, quarantine),
and the end-to-end properties the sequential-gate CI job enforces:
worker-count digest parity and resume reproducing the uninterrupted
run's stopping decisions.
"""

import math
import statistics

import pytest

from repro.faults.types import iter_fault_types
from repro.harness.campaign import (
    CampaignJournal,
    CampaignShard,
    ParallelCampaign,
)
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import WebServerExperiment
from repro.harness.metrics import (
    SEQUENTIAL_TRACKED_METRICS,
    StratumEstimator,
    StreamingEstimator,
    normal_quantile,
)
from repro.harness.sequential import (
    SequentialController,
    StratumPlan,
    batch_observation,
    plan_sequential_strata,
)
from repro.sim.rng import SeededRng
from repro.specweb.metrics import MetricsPartial


def tiny_config(iterations=1, fault_sample=24, **sequential):
    config = ExperimentConfig.smoke()
    config.fault_sample = fault_sample
    config.rules = type(config.rules)(
        warmup_seconds=3.0, rampup_seconds=1.0, rampdown_seconds=1.0,
        iterations=iterations, slot_seconds=4.0, slot_gap_seconds=1.0,
        baseline_seconds=12.0,
    )
    config.sequential = True
    for key, value in sequential.items():
        setattr(config, key, value)
    return config


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------
def test_normal_quantile_matches_known_values():
    assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
    assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
    assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-4)
    # Tail branch of the approximation.
    assert normal_quantile(0.001) == pytest.approx(-3.090232, abs=1e-4)
    with pytest.raises(ValueError):
        normal_quantile(0.0)
    with pytest.raises(ValueError):
        normal_quantile(1.0)


def test_streaming_estimator_matches_statistics_module():
    values = [3.1, 0.4, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3]
    estimator = StreamingEstimator()
    for value in values:
        estimator.add(value)
    assert estimator.count == len(values)
    assert estimator.mean == pytest.approx(statistics.fmean(values))
    assert estimator.variance == pytest.approx(
        statistics.variance(values)
    )
    assert estimator.sd == pytest.approx(statistics.stdev(values))


def test_streaming_estimator_undefined_below_two_points():
    estimator = StreamingEstimator()
    estimator.add(4.2)
    assert estimator.variance is None
    assert estimator.sd is None


def _observation(value):
    return {metric: value for metric in SEQUENTIAL_TRACKED_METRICS}


def test_stratum_estimator_single_batch_never_converges():
    estimator = StratumEstimator()
    estimator.observe(_observation(5.0))
    widths = estimator.half_widths()
    assert all(widths[m] is None for m in SEQUENTIAL_TRACKED_METRICS)
    assert not estimator.converged(ci_target=1000.0)


def test_stratum_estimator_zero_variance_converges_immediately():
    estimator = StratumEstimator()
    estimator.observe(_observation(5.0))
    estimator.observe(_observation(5.0))
    widths = estimator.half_widths()
    assert all(widths[m] == 0.0 for m in SEQUENTIAL_TRACKED_METRICS)
    assert estimator.converged(ci_target=0.01)


def test_stratum_estimator_normal_half_width_formula():
    estimator = StratumEstimator(confidence=0.95, bootstrap_below=2)
    values = [1.0, 2.0, 3.0, 4.0]
    for value in values:
        estimator.observe(_observation(value))
    expected = (
        normal_quantile(0.975) * statistics.stdev(values)
        / math.sqrt(len(values))
    )
    widths = estimator.half_widths()
    for metric in SEQUENTIAL_TRACKED_METRICS:
        assert widths[metric] == pytest.approx(expected)


def test_stratum_estimator_bootstrap_is_deterministic():
    def widths_with_seed():
        estimator = StratumEstimator()
        for value in (1.0, 4.0, 2.5, 3.5):
            estimator.observe(_observation(value))
        return estimator.half_widths(SeededRng(7, label="boot"))

    first = widths_with_seed()
    second = widths_with_seed()
    assert first == second
    # The bootstrap interval is finite and positive for varying data.
    assert all(first[m] > 0 for m in SEQUENTIAL_TRACKED_METRICS)


# ----------------------------------------------------------------------
# Stratified batch plan
# ----------------------------------------------------------------------
def test_strata_by_type_preserves_order_and_proportions():
    config = tiny_config(fault_sample=24)
    faultload = WebServerExperiment(config).prepared_faultload()
    strata = faultload.strata_by_type()
    counts = faultload.counts_by_type()
    # Table 1 order, no empty types, full coverage.
    type_order = [ft for ft in iter_fault_types() if counts[ft]]
    assert [fault_type for fault_type, _ in strata] == type_order
    assert sum(len(locs) for _, locs in strata) == len(faultload)
    for fault_type, locations in strata:
        assert len(locations) == counts[fault_type]
        assert all(loc.fault_type == fault_type for loc in locations)


def test_plan_sequential_strata_globally_unique_contiguous():
    config = tiny_config(fault_sample=24)
    faultload = WebServerExperiment(config).prepared_faultload()
    strata = plan_sequential_strata(faultload, batch_slots=2)
    batches = [batch for plan in strata for batch in plan.batches]
    assert [batch.index for batch in batches] == list(range(len(batches)))
    slot = 0
    for batch in batches:
        assert batch.first_slot == slot
        slot += len(batch.locations)
    assert slot == len(faultload)
    with pytest.raises(ValueError):
        plan_sequential_strata(faultload, batch_slots=0)


# ----------------------------------------------------------------------
# Controller decisions (synthetic outcomes)
# ----------------------------------------------------------------------
def _synthetic_outcome(batch, ops, errors, mis=0):
    from repro.harness.campaign import ShardOutcome
    return ShardOutcome(
        shard_index=batch.index,
        first_slot=batch.first_slot,
        num_slots=len(batch.locations),
        partial=MetricsPartial(
            total_ops=ops, total_errors=errors, latency_sum=1.0,
            latency_count=ops, conforming_sum=2.0, group_count=1,
            measured_seconds=8.0,
        ),
        mis=mis, kns=0, kcp=0,
        faults_injected=len(batch.locations),
        runtime_stats={},
    )


def _synthetic_plan(num_batches, batch_slots=2, position=0,
                    fault_type="MIA"):
    batches = tuple(
        CampaignShard(
            index=index,
            first_slot=index * batch_slots,
            locations=tuple(range(batch_slots)),
        )
        for index in range(num_batches)
    )
    return StratumPlan(
        position=position,
        fault_type=fault_type,
        first_slot=0,
        planned_slots=num_batches * batch_slots,
        batches=batches,
    )


def _drive(config, plan, outcome_for):
    """Run the controller loop to completion over synthetic outcomes."""
    controller = SequentialController(config, [plan])
    rounds = 0
    while True:
        round_batches = controller.next_round()
        if not round_batches:
            break
        rounds += 1
        assert rounds <= len(plan.batches) + 1, "controller looped"
        for state, batch in round_batches:
            controller.complete_batch(state, batch, outcome_for(batch))
    return controller


def test_stratum_smaller_than_min_slots_stops_exhausted():
    config = tiny_config(sequential_batch_slots=2,
                         sequential_min_slots=8)
    plan = _synthetic_plan(num_batches=2)  # 4 slots < min 8
    controller = _drive(
        config, plan, lambda batch: _synthetic_outcome(batch, 100, 5)
    )
    state = controller.states[0]
    assert state.stop_reason == "exhausted"
    assert state.executed_slots == 4


def test_zero_variance_stratum_stops_at_min_slots():
    config = tiny_config(ci_target=0.05, sequential_batch_slots=2,
                         sequential_min_slots=4)
    plan = _synthetic_plan(num_batches=50)
    controller = _drive(
        config, plan,
        lambda batch: _synthetic_outcome(batch, 100, 5),  # constant
    )
    state = controller.states[0]
    assert state.stop_reason == "confidence"
    # Stops exactly at the floor — two batches — not after 50.
    assert state.executed_slots == 4


def test_max_slots_ceiling_stops_unconverged_stratum():
    config = tiny_config(ci_target=1e-9, sequential_batch_slots=2,
                         sequential_min_slots=4,
                         sequential_max_slots=6)
    plan = _synthetic_plan(num_batches=50)
    noisy = iter(range(1, 1000))
    controller = _drive(
        config, plan,
        lambda batch: _synthetic_outcome(batch, 100, next(noisy)),
    )
    state = controller.states[0]
    assert state.stop_reason == "max-slots"
    assert state.executed_slots == 6


def test_quarantined_batch_stops_stratum():
    config = tiny_config(sequential_batch_slots=2,
                         sequential_min_slots=4)
    plan = _synthetic_plan(num_batches=10)

    def outcome_for(batch):
        if batch.index == 1:
            return None  # supervisor quarantined it
        return _synthetic_outcome(batch, 100, batch.index)

    controller = _drive(config, plan, outcome_for)
    state = controller.states[0]
    assert state.stop_reason == "quarantined"
    # The quarantined batch's slots are not counted as executed.
    assert state.executed_slots == 2


def test_controller_summary_shape():
    config = tiny_config(ci_target=0.05, sequential_batch_slots=2,
                         sequential_min_slots=4)
    plan = _synthetic_plan(num_batches=10)
    controller = _drive(
        config, plan, lambda batch: _synthetic_outcome(batch, 100, 5)
    )
    summary = controller.summary()
    assert summary["planned_slots"] == 20
    assert summary["executed_slots"] == 4
    assert summary["slots_skipped"] == 16
    assert summary["stopping_points"] == {"MIA": 4}
    assert summary["stop_reasons"] == {"MIA": "confidence"}
    (stratum,) = summary["strata"]
    assert len(stratum["trajectory"]) == 2
    # Half-widths serialize as numbers or null — never Infinity, which
    # the jq-based CI gates cannot parse.
    import json
    blob = json.dumps(summary)
    assert "Infinity" not in blob


def test_batch_observation_values():
    batch = CampaignShard(index=0, first_slot=0, locations=(1, 2, 3, 4))
    outcome = _synthetic_outcome(batch, ops=100, errors=5, mis=2)
    observation = batch_observation(outcome, num_connections=8)
    metrics = outcome.partial.to_metrics(8)
    assert observation["SPCf"] == metrics.spc
    assert observation["THRf"] == metrics.thr
    assert observation["RTMf"] == metrics.rtm_ms
    assert observation["ER%f"] == metrics.er_percent
    assert observation["ADMf"] == pytest.approx(2 / 4)


# ----------------------------------------------------------------------
# End to end: parity and resume
# ----------------------------------------------------------------------
def _run_sequential(config, tmp_path, name, workers=1, resume=False):
    campaign = ParallelCampaign(
        config, workers=workers,
        journal_path=tmp_path / name / "journal.jsonl", resume=resume,
    )
    result = campaign.run(
        include_baseline=False, include_profile_mode=False
    )
    return result, campaign.manifest


def test_sequential_campaign_worker_count_parity(tmp_path):
    config = tiny_config(ci_target=0.5, sequential_batch_slots=2)
    serial, manifest1 = _run_sequential(config, tmp_path, "w1", workers=1)
    parallel, manifest2 = _run_sequential(
        tiny_config(ci_target=0.5, sequential_batch_slots=2),
        tmp_path, "w2", workers=2,
    )
    assert manifest1.metrics_digest == manifest2.metrics_digest
    assert manifest1.sequential == manifest2.sequential
    assert manifest1.sequential["enabled"]
    assert serial.sequential == parallel.sequential


def test_sequential_resume_mid_batch_matches_uninterrupted(tmp_path):
    config = tiny_config(ci_target=0.5, sequential_batch_slots=2)
    full, full_manifest = _run_sequential(config, tmp_path, "full")
    journal_path = tmp_path / "full" / "journal.jsonl"
    lines = journal_path.read_text().splitlines(keepends=True)
    shard_lines = [line for line in lines if '"kind": "shard"' in line]
    assert len(shard_lines) > 2
    # Kill the campaign "mid-batch": keep the header and roughly half
    # the completed units, then resume under a different worker count.
    cut = tmp_path / "cut" / "journal.jsonl"
    cut.parent.mkdir()
    cut.write_text("".join(lines[:1 + len(lines) // 2]))
    resumed_config = tiny_config(ci_target=0.5, sequential_batch_slots=2)
    resumed, resumed_manifest = _run_sequential(
        resumed_config, tmp_path, "cut", workers=2, resume=True
    )
    assert resumed_manifest.metrics_digest == full_manifest.metrics_digest
    # The resumed run recomputes every stopping decision from the
    # replayed outcomes — stopping points, stop reasons, trajectories,
    # all identical to the uninterrupted run.
    assert resumed_manifest.sequential == full_manifest.sequential
    # And its journal's batch audit records agree with the original's.
    original = CampaignJournal.load(journal_path)
    rerun = CampaignJournal.load(cut)
    for key, entry in rerun.batches.items():
        if key in original.batches:
            assert entry == original.batches[key]


def test_sequential_schedule_is_in_campaign_key():
    config = tiny_config(ci_target=0.5)
    faultload = WebServerExperiment(config).prepared_faultload()
    from repro.harness.campaign import campaign_key
    base = campaign_key(config, faultload)
    for attribute, value in (
        ("ci_target", 0.25),
        ("ci_confidence", 0.9),
        ("sequential_batch_slots", 3),
        ("sequential_min_slots", 9),
        ("sequential_max_slots", 12),
        ("sequential", False),
    ):
        changed = tiny_config(ci_target=0.5)
        setattr(changed, attribute, value)
        assert campaign_key(changed, faultload) != base, attribute


def test_sequential_executes_a_subset_and_reports_savings(tmp_path):
    config = tiny_config(fault_sample=48, ci_target=0.8,
                         sequential_batch_slots=2,
                         sequential_min_slots=4)
    result, manifest = _run_sequential(config, tmp_path, "save")
    block = manifest.sequential
    assert block["executed_slots"] <= block["planned_slots"]
    assert block["slots_skipped"] == (
        block["planned_slots"] - block["executed_slots"]
    )
    # Manifest JSON is jq-parseable (no Infinity/NaN leaked).
    import json
    json.loads(json.dumps(block, allow_nan=False))
