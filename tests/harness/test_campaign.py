"""Tests for the parallel campaign engine (tier-1).

The load-bearing property: the merged result of a campaign is a pure
function of (config, seed, faultload) — never of the worker count or of
which units a resumed run replays from the journal.
"""

import json

import pytest

from repro.harness.campaign import (
    JOURNAL_VERSION,
    CampaignJournal,
    ParallelCampaign,
    ShardOutcome,
    campaign_key,
    merge_outcomes,
    plan_shards,
    run_shard,
)
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import WebServerExperiment
from repro.specweb.metrics import MetricsPartial


def tiny_config(iterations=1, fault_sample=8):
    config = ExperimentConfig.smoke()
    config.fault_sample = fault_sample
    config.rules = type(config.rules)(
        warmup_seconds=3.0, rampup_seconds=1.0, rampdown_seconds=1.0,
        iterations=iterations, slot_seconds=4.0, slot_gap_seconds=1.0,
        baseline_seconds=12.0,
    )
    return config


def iterations_equal(a, b):
    assert a.metrics == b.metrics
    assert (a.mis, a.kns, a.kcp) == (b.mis, b.kns, b.kcp)
    assert a.faults_injected == b.faults_injected
    assert a.runtime_stats == b.runtime_stats


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
def test_plan_shards_is_contiguous_and_complete():
    config = tiny_config()
    faultload = WebServerExperiment(config).prepared_faultload()
    shards = plan_shards(faultload, 3)
    assert [s.first_slot for s in shards] == list(
        range(0, len(faultload), 3)
    )
    flattened = [loc for shard in shards for loc in shard.locations]
    assert [l.fault_id for l in flattened] == [
        l.fault_id for l in faultload
    ]


def test_plan_shards_independent_of_worker_count():
    config = tiny_config()
    faultload = WebServerExperiment(config).prepared_faultload()
    # The plan has no worker parameter at all — assert the shape is a
    # pure function of (faultload, slots_per_shard).
    a = plan_shards(faultload, 4)
    b = plan_shards(faultload, 4)
    assert a == b
    with pytest.raises(ValueError):
        plan_shards(faultload, 0)


def test_shard_outcome_roundtrips_through_json():
    outcome = ShardOutcome(
        shard_index=3, first_slot=9, num_slots=3,
        partial=MetricsPartial(total_ops=10, total_errors=1,
                               latency_sum=1.25, latency_count=9,
                               conforming_sum=4.0, group_count=1,
                               measured_seconds=12.0),
        mis=1, kns=0, kcp=2, faults_injected=3,
        runtime_stats={"restarts": 2},
    )
    restored = ShardOutcome.from_dict(
        json.loads(json.dumps(outcome.to_dict()))
    )
    assert restored == outcome


def test_merge_outcomes_ignores_arrival_order():
    def outcome(index, ops):
        return ShardOutcome(
            shard_index=index, first_slot=index * 2, num_slots=2,
            partial=MetricsPartial(total_ops=ops, total_errors=0,
                                   latency_sum=0.1 * ops,
                                   latency_count=ops,
                                   conforming_sum=1.0, group_count=1,
                                   measured_seconds=8.0),
            mis=index, kns=0, kcp=0, faults_injected=2,
            runtime_stats={"ops": ops},
        )

    outcomes = [outcome(2, 30), outcome(0, 10), outcome(1, 20)]
    merged = merge_outcomes(outcomes, iteration=1, num_connections=8)
    shuffled = merge_outcomes(list(reversed(outcomes)), iteration=1,
                              num_connections=8)
    assert merged.metrics == shuffled.metrics
    assert merged.metrics.total_ops == 60
    assert merged.mis == 3
    assert merged.runtime_stats == {"ops": 60}


# ----------------------------------------------------------------------
# Equivalence (the CI gate: workers=1 vs workers=2)
# ----------------------------------------------------------------------
def test_campaign_workers_1_and_2_bit_identical():
    config = tiny_config(iterations=1)
    serial = ParallelCampaign(config, workers=1).run(
        include_baseline=False, include_profile_mode=False
    )
    parallel = ParallelCampaign(config, workers=2).run(
        include_baseline=False, include_profile_mode=False
    )
    assert len(serial.iterations) == len(parallel.iterations) == 1
    iterations_equal(serial.iterations[0], parallel.iterations[0])


def test_campaign_workers_1_and_2_bit_identical_with_mutant_cache(tmp_path):
    """The precompiled-mutant pipeline must not leak into the metrics:
    serial and sharded runs stay bit-identical with warm-up plus the
    disk cache tier enabled."""
    config = tiny_config(iterations=1)
    serial = ParallelCampaign(
        config, workers=1, cache_dir=tmp_path / "serial"
    ).run(include_baseline=False, include_profile_mode=False)
    parallel = ParallelCampaign(
        config, workers=2, cache_dir=tmp_path / "parallel"
    ).run(include_baseline=False, include_profile_mode=False)
    iterations_equal(serial.iterations[0], parallel.iterations[0])


def test_campaign_warmup_compiles_sampled_faultload():
    from repro.gswfit.cache import clear_mutant_cache

    clear_mutant_cache()
    try:
        config = tiny_config(iterations=1)
        campaign = ParallelCampaign(config, workers=1)
        campaign.run(include_baseline=False, include_profile_mode=False)
        stats = campaign.warmup_stats
        assert stats is not None
        assert stats["slots"] == config.fault_sample
        assert stats["compiled"] + stats["cached"] + stats["failed"] == (
            stats["slots"]
        )
    finally:
        clear_mutant_cache()


def test_campaign_merge_matches_manual_shard_runs():
    config = tiny_config(iterations=1)
    campaign = ParallelCampaign(config, workers=1)
    faultload = campaign.prepared_faultload()
    shards = plan_shards(faultload, campaign.slots_per_shard)
    outcomes = [run_shard(config, 1, shard) for shard in shards]
    manual = merge_outcomes(outcomes, 1, config.client.connections)
    result = ParallelCampaign(config, workers=1).run(
        include_baseline=False, include_profile_mode=False
    )
    iterations_equal(result.iterations[0], manual)


# ----------------------------------------------------------------------
# Checkpoint/resume
# ----------------------------------------------------------------------
def test_campaign_resume_after_kill_matches_uninterrupted(tmp_path):
    config = tiny_config(iterations=2)
    full_journal = tmp_path / "full.jsonl"
    full = ParallelCampaign(
        config, workers=1, journal_path=full_journal
    ).run()
    # Simulate a kill after iteration 1: drop every iteration-2 shard
    # record from the journal, then resume.
    survivors = []
    for line in full_journal.read_text().splitlines():
        entry = json.loads(line)
        if entry.get("kind") == "shard" and entry["iteration"] > 1:
            continue
        survivors.append(line)
    cut_journal = tmp_path / "cut.jsonl"
    cut_journal.write_text("\n".join(survivors) + "\n")
    resumed = ParallelCampaign(
        config, workers=1, journal_path=cut_journal, resume=True
    ).run()
    assert resumed.baseline == full.baseline
    assert resumed.profile_mode == full.profile_mode
    assert len(resumed.iterations) == len(full.iterations) == 2
    for a, b in zip(full.iterations, resumed.iterations):
        iterations_equal(a, b)


def test_campaign_journal_skips_completed_units(tmp_path, monkeypatch):
    config = tiny_config(iterations=1)
    journal_path = tmp_path / "campaign.jsonl"
    ParallelCampaign(config, workers=1, journal_path=journal_path).run(
        include_baseline=False, include_profile_mode=False
    )
    # On resume every shard is already journalled: the engine must not
    # run a single new shard.
    def boom(*args, **kwargs):
        raise AssertionError("resume re-ran a completed shard")

    monkeypatch.setattr("repro.harness.campaign.run_shard", boom)
    resumed = ParallelCampaign(
        config, workers=1, journal_path=journal_path, resume=True
    ).run(include_baseline=False, include_profile_mode=False)
    assert len(resumed.iterations) == 1


def test_campaign_resume_rejects_foreign_journal(tmp_path):
    config = tiny_config(iterations=1)
    journal_path = tmp_path / "campaign.jsonl"
    ParallelCampaign(config, workers=1, journal_path=journal_path).run(
        include_baseline=False, include_profile_mode=False
    )
    other = tiny_config(iterations=1, fault_sample=6)
    with pytest.raises(ValueError, match="different campaign"):
        ParallelCampaign(
            other, workers=1, journal_path=journal_path, resume=True
        ).run(include_baseline=False, include_profile_mode=False)


def test_campaign_key_sensitive_to_config_and_faultload():
    config = tiny_config()
    faultload = WebServerExperiment(config).prepared_faultload()
    key = campaign_key(config, faultload)
    assert key == campaign_key(config, faultload)
    other = tiny_config()
    other.seed = config.seed + 1
    assert campaign_key(other, faultload) != key


def test_journal_load_tolerates_missing_file(tmp_path):
    journal = CampaignJournal.load(tmp_path / "nope.jsonl")
    assert journal.header is None
    assert journal.phases == {}
    assert journal.shards == {}


def test_journal_load_drops_truncated_final_line(tmp_path):
    """A hard kill mid-append leaves a torn last line; load must treat
    it as an incomplete unit (rerun on resume), not corruption."""
    config = tiny_config(iterations=1)
    journal_path = tmp_path / "campaign.jsonl"
    ParallelCampaign(config, workers=1, journal_path=journal_path).run(
        include_baseline=False, include_profile_mode=False
    )
    intact = CampaignJournal.load(journal_path)
    assert intact.shards
    whole = journal_path.read_text()
    lines = whole.rstrip("\n").split("\n")
    torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
    journal_path.write_text(torn)
    journal = CampaignJournal.load(journal_path)
    assert journal.header is not None
    assert len(journal.shards) == len(intact.shards) - 1


def test_journal_load_raises_on_mid_file_corruption(tmp_path):
    journal_path = tmp_path / "campaign.jsonl"
    journal_path.write_text(
        '{"kind": "header", "version": %d, "campaign_key": "k"}\n'
        '{"kind": "shard", "iteration": 1, "sh\n'
        '{"kind": "phase", "phase": "baseline", "metrics": {}}\n'
        % JOURNAL_VERSION
    )
    with pytest.raises(json.JSONDecodeError):
        CampaignJournal.load(journal_path)


def test_campaign_resumes_after_hard_kill_with_torn_journal(tmp_path):
    """End to end: truncate the journal mid-line, resume, and land on
    the uninterrupted result."""
    config = tiny_config(iterations=1)
    full_journal = tmp_path / "full.jsonl"
    full = ParallelCampaign(
        config, workers=1, journal_path=full_journal
    ).run(include_baseline=False, include_profile_mode=False)
    torn_journal = tmp_path / "torn.jsonl"
    content = full_journal.read_text()
    torn_journal.write_text(content[: int(len(content) * 0.8)])
    resumed = ParallelCampaign(
        config, workers=1, journal_path=torn_journal, resume=True
    ).run(include_baseline=False, include_profile_mode=False)
    assert len(resumed.iterations) == len(full.iterations) == 1
    iterations_equal(full.iterations[0], resumed.iterations[0])


# ----------------------------------------------------------------------
# Integration with the serial experiment
# ----------------------------------------------------------------------
def test_campaign_uses_prepared_faultload_once():
    """The campaign's shards must cover exactly the prepared slots."""
    config = tiny_config()
    campaign = ParallelCampaign(config, workers=1)
    prepared = campaign.prepared_faultload()
    assert prepared.prepared
    again = campaign.prepared_faultload(prepared)
    assert again is prepared  # no re-sampling, no name mangling
    shards = plan_shards(prepared, campaign.slots_per_shard)
    assert sum(len(s) for s in shards) == len(prepared)


def test_campaign_result_feeds_reporting():
    from repro.harness.metrics import DependabilityMetrics
    from repro.reporting.report import table5_results

    config = tiny_config(iterations=1)
    result = ParallelCampaign(config, workers=2).run()
    rendered = table5_results({("W2k (sim)", "apache"): result}).render()
    assert "apache" in rendered
    metrics = DependabilityMetrics.from_results(result)
    assert metrics.admf >= 0
