"""Tier-1 tests for the campaign service daemon.

Four layers, in rising order of integration:

* spec validation — a JSON spec is valid exactly when the equivalent
  ``campaign`` command line is, managed keys refused;
* the durable queue — fsync'd replay, torn-tail tolerance, bounded
  admission;
* the daemon state machine, driven with an injected runner — retry
  with backoff, budget interrupt, graceful drain, restart recovery at
  every lifecycle stage (the satellite-3 matrix), exactly-once
  scheduling;
* the HTTP surface and, under the ``slow`` marker, the full chaos
  scenario: a real daemon subprocess SIGKILLed mid-campaign must, after
  restart, finish with a ``metrics_digest`` byte-identical to an
  uninterrupted run — with no slot executed twice.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.harness.campaign import CampaignInterrupted, ParallelCampaign
from repro.harness.service import (
    CampaignDaemon,
    QueueFull,
    SpecError,
    SpecQueue,
    make_server,
    namespace_from_spec,
    recover_queue,
)

#: A campaign small enough to finish in about a second, used whenever a
#: test runs the real engine.
SPEC = {
    "os": "nt51", "server": "apache", "faults": 6, "connections": 2,
    "seed": 2004, "workers": 2, "slots-per-shard": 2,
    "no-baseline": True, "no-profile": True,
}


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_spec_parses_to_campaign_namespace():
    args = namespace_from_spec(SPEC)
    assert args.server == "apache"
    assert args.os_codename == "nt51"
    assert args.faults == 6
    assert args.workers == 2
    assert args.slots_per_shard == 2
    assert args.no_baseline and args.no_profile


def test_spec_accepts_underscores_and_faults_zero():
    args = namespace_from_spec({"os_codename": "nt50", "faults": 0})
    assert args.os_codename == "nt50"
    assert args.faults is None  # 0 means the full faultload, like main()


@pytest.mark.parametrize("spec,fragment", [
    ({"journal": "x"}, "managed by the service"),
    ({"resume": True}, "managed by the service"),
    ({"export": "x"}, "managed by the service"),
    ({"bogus": 1}, "unknown spec key"),
    ({"workers": 0}, "--workers must be >= 1"),
    ({"ci-target": 0.1}, "requires --sequential"),
    ({"fabric-listen": "h:1"}, "requires --backend fabric"),
    ({"server": "nope"}, "invalid choice"),
    ({"workers": "two"}, "invalid int value"),
    ({"workers": True}, "expects a value"),
    ({"no-baseline": 1}, "must be a boolean"),
    ("not a dict", "must be a JSON object"),
])
def test_spec_rejections(spec, fragment):
    with pytest.raises(SpecError, match=re.escape(fragment)):
        namespace_from_spec(spec)


# ----------------------------------------------------------------------
# The durable queue
# ----------------------------------------------------------------------
def test_queue_replay_roundtrip(tmp_path):
    path = tmp_path / "queue.jsonl"
    queue = SpecQueue(path, capacity=4)
    first = queue.submit({"server": "apache"})
    second = queue.submit({"server": "nullsrv"})
    queue.mark(first.id, "running", attempts=1)
    queue.mark(first.id, "done", metrics_digest="abc")
    queue.close()

    replayed = SpecQueue(path, capacity=4)
    assert [entry.id for entry in replayed.in_order()] == \
        [first.id, second.id]
    assert replayed.get(first.id).state == "done"
    assert replayed.get(first.id).detail["metrics_digest"] == "abc"
    assert replayed.get(second.id).state == "queued"
    assert replayed.next_queued().id == second.id
    # seq continues past the replayed entries: ids never collide
    third = replayed.submit({"server": "apache"})
    assert third.seq == 2
    assert third.id != first.id
    replayed.close()


def test_queue_sheds_at_capacity_with_retry_hint(tmp_path):
    queue = SpecQueue(tmp_path / "queue.jsonl", capacity=2)
    queue.submit({"a": 1})
    running = queue.submit({"a": 2})
    queue.mark(running.id, "running")  # running still counts as active
    with pytest.raises(QueueFull) as excinfo:
        queue.submit({"a": 3}, retry_after=7.0)
    assert excinfo.value.retry_after == 7.0
    # terminal states free capacity
    queue.mark(running.id, "failed", error="x")
    queue.submit({"a": 3})
    queue.close()


def test_queue_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "queue.jsonl"
    queue = SpecQueue(path, capacity=4)
    entry = queue.submit({"server": "apache"})
    queue.mark(entry.id, "running")
    queue.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "state", "id": "' + entry.id + '", "st')
    replayed = SpecQueue(path, capacity=4)
    assert replayed.get(entry.id).state == "running"  # torn line dropped
    replayed.close()


def test_queue_torn_interior_line_raises(tmp_path):
    path = tmp_path / "queue.jsonl"
    path.write_text('{"kind": "spec", "id": "a", "seq"\n'
                    '{"kind": "state", "id": "a", "state": "done"}\n')
    with pytest.raises(json.JSONDecodeError):
        SpecQueue(path)


def test_queue_state_for_unseen_spec_is_skipped(tmp_path):
    # A state line whose spec record was torn away must not crash replay.
    path = tmp_path / "queue.jsonl"
    path.write_text('{"kind": "state", "id": "ghost", "state": "done"}\n')
    queue = SpecQueue(path)
    assert len(queue) == 0
    queue.close()


def test_recover_queue_requeues_only_running(tmp_path):
    queue = SpecQueue(tmp_path / "queue.jsonl", capacity=8)
    queued = queue.submit({"a": 1})
    running = queue.submit({"a": 2})
    done = queue.submit({"a": 3})
    queue.mark(running.id, "running", attempts=1)
    queue.mark(done.id, "done")
    summary = recover_queue(queue)
    assert summary["requeued"] == [running.id]
    assert queue.get(running.id).state == "queued"
    assert queue.get(running.id).detail["recovered"] is True
    assert queue.get(queued.id).state == "queued"
    assert queue.get(done.id).state == "done"
    queue.close()
    # the requeue itself is durable: a second crash changes nothing
    replayed = SpecQueue(tmp_path / "queue.jsonl")
    assert replayed.get(running.id).state == "queued"
    replayed.close()


# ----------------------------------------------------------------------
# The daemon state machine (injected runner)
# ----------------------------------------------------------------------
def _await(predicate, deadline=10.0, message="condition"):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


def _daemon(tmp_path, runner, **kwargs):
    kwargs.setdefault("poll_seconds", 0.005)
    return CampaignDaemon(tmp_path / "home", runner=runner, **kwargs)


def test_daemon_runs_submission_to_done(tmp_path):
    calls = []

    def runner(entry, stop_event):
        calls.append(entry.id)
        return {"metrics_digest": "d1", "campaign_key": "k1"}

    daemon = _daemon(tmp_path, runner)
    daemon.start()
    entry = daemon.submit(SPEC)
    _await(lambda: daemon.status(entry.id)["state"] == "done",
           message="done")
    status = daemon.status(entry.id)
    assert status["metrics_digest"] == "d1"
    assert status["attempts"] == 1
    assert calls == [entry.id]  # exactly once
    daemon.drain()
    assert daemon.wait_drained(5)
    daemon.close()


def test_daemon_rejects_bad_spec_before_enqueue(tmp_path):
    daemon = _daemon(tmp_path, lambda entry, stop: {})
    with pytest.raises(SpecError):
        daemon.submit({"bogus": 1})
    assert len(daemon.queue) == 0
    daemon.close()


def test_daemon_retries_with_backoff_then_succeeds(tmp_path):
    from repro.harness.backoff import BackoffPolicy

    attempts = []

    def runner(entry, stop_event):
        attempts.append(entry.id)
        if len(attempts) < 3:
            raise RuntimeError(f"flake {len(attempts)}")
        return {"metrics_digest": "d2"}

    daemon = _daemon(
        tmp_path, runner, max_attempts=3,
        backoff=BackoffPolicy(base=0.001, max_delay=0.002, jitter=0.0,
                              seed="t"),
    )
    daemon.start()
    entry = daemon.submit(SPEC)
    _await(lambda: daemon.status(entry.id)["state"] == "done",
           message="retried to done")
    assert len(attempts) == 3
    assert daemon.status(entry.id)["attempts"] == 3
    daemon.drain()
    daemon.wait_drained(5)
    daemon.close()


def test_daemon_fails_after_max_attempts(tmp_path):
    from repro.harness.backoff import BackoffPolicy

    def runner(entry, stop_event):
        raise RuntimeError("always broken")

    daemon = _daemon(
        tmp_path, runner, max_attempts=2,
        backoff=BackoffPolicy(base=0.001, max_delay=0.002, jitter=0.0,
                              seed="t"),
    )
    daemon.start()
    entry = daemon.submit(SPEC)
    _await(lambda: daemon.status(entry.id)["state"] == "failed",
           message="failed")
    status = daemon.status(entry.id)
    assert "always broken" in status["error"]
    assert status["attempts"] == 2
    daemon.drain()
    daemon.wait_drained(5)
    daemon.close()


def test_daemon_budget_interrupt_marks_failed(tmp_path):
    def runner(entry, stop_event):
        assert stop_event.wait(10), "budget timer never fired"
        raise CampaignInterrupted("key", completed=3, remaining=5)

    daemon = _daemon(tmp_path, runner, campaign_budget=0.02)
    daemon.start()
    entry = daemon.submit(SPEC)
    _await(lambda: daemon.status(entry.id)["state"] == "failed",
           message="budget failure")
    status = daemon.status(entry.id)
    assert status["error"] == "budget_exceeded"
    assert status["completed_shards"] == 3
    assert status["remaining_shards"] == 5
    daemon.drain()
    daemon.wait_drained(5)
    daemon.close()


def test_daemon_drain_requeues_active_campaign(tmp_path):
    started = threading.Event()

    def runner(entry, stop_event):
        started.set()
        assert stop_event.wait(10), "drain never interrupted us"
        raise CampaignInterrupted("key", completed=2, remaining=6)

    daemon = _daemon(tmp_path, runner)
    daemon.start()
    entry = daemon.submit(SPEC)
    assert started.wait(10)
    daemon.drain()
    assert daemon.wait_drained(10)
    # the interrupted campaign went back to queued, durably
    assert daemon.status(entry.id)["state"] == "queued"
    assert daemon.status(entry.id)["interrupted"] is True
    with pytest.raises(Exception, match="draining"):
        daemon.submit(SPEC)
    daemon.close()

    # the next daemon generation picks it up and finishes it
    def finish(entry, stop_event):
        return {"metrics_digest": "after-drain"}

    second = _daemon(tmp_path, finish)
    second.start()
    _await(lambda: second.status(entry.id)["state"] == "done",
           message="finish after drain")
    assert second.status(entry.id)["metrics_digest"] == "after-drain"
    second.drain()
    second.wait_drained(5)
    second.close()


# ----------------------------------------------------------------------
# Restart recovery at each lifecycle stage (real campaign engine)
# ----------------------------------------------------------------------
def _journal_units(journal_path):
    """The (iteration, shard) keys of every shard record, in file order.

    Tolerates a torn final line because some callers poll the journal
    while the campaign is still appending to it.
    """
    units = []
    for line in Path(journal_path).read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("kind") == "shard":
            units.append((record["iteration"], record["shard"]))
    return units


_DIRECT_DIGEST = {}


def _direct_digest(tmp_path_factory):
    """The uninterrupted-run digest for SPEC, computed once per session."""
    if "digest" not in _DIRECT_DIGEST:
        from repro.cli import _campaign_config, _campaign_kwargs

        args = namespace_from_spec(SPEC)
        kwargs = _campaign_kwargs(args)
        base = tmp_path_factory.mktemp("direct")
        kwargs["journal_path"] = str(base / "journal.jsonl")
        kwargs["cache_dir"] = str(base / "cache")
        campaign = ParallelCampaign(_campaign_config(args), **kwargs)
        campaign.run(include_baseline=False, include_profile_mode=False)
        _DIRECT_DIGEST["digest"] = campaign.manifest.metrics_digest
    return _DIRECT_DIGEST["digest"]


def _finish_and_check(tmp_path, entry_id, expected_digest,
                      pre_restart_units):
    """Restart a real-runner daemon on ``tmp_path`` and assert the
    campaign completes exactly once with the uninterrupted digest."""
    daemon = CampaignDaemon(tmp_path / "home", poll_seconds=0.005)
    daemon.start()
    _await(lambda: daemon.status(entry_id)["state"] == "done",
           deadline=60.0, message="recovery to done")
    status = daemon.status(entry_id)
    assert status["metrics_digest"] == expected_digest
    units = _journal_units(
        daemon.campaign_dir(entry_id) / "journal.jsonl"
    )
    # exactly once: every unit journaled a single time, and completed
    # pre-crash work was replayed, not re-executed
    assert len(units) == len(set(units))
    assert units[:len(pre_restart_units)] == pre_restart_units
    daemon.drain()
    daemon.wait_drained(10)
    daemon.close()
    return status


@pytest.mark.slow
def test_recovery_stage_spec_accepted(tmp_path, tmp_path_factory):
    """Death after the 202, before any run: the spec alone recovers."""
    first = CampaignDaemon(tmp_path / "home")  # scheduler never started
    entry = first.submit(SPEC)
    first.close()
    status = _finish_and_check(
        tmp_path, entry.id, _direct_digest(tmp_path_factory), [],
    )
    assert status["attempts"] == 1  # never ran before the crash


@pytest.mark.slow
def test_recovery_stage_shard_in_flight(tmp_path, tmp_path_factory):
    """Death mid-campaign: completed rounds replay, the rest runs."""
    first = CampaignDaemon(tmp_path / "home")
    entry = first.submit(SPEC)
    first.queue.mark(entry.id, "running", attempts=1)
    # act out the crashed attempt: a real campaign on the daemon's
    # journal, interrupted cooperatively after at least one shard round
    stop = threading.Event()
    journal = first.campaign_dir(entry.id) / "journal.jsonl"

    def _interrupt_after_first_shard():
        _await(lambda: journal.exists() and _journal_units(journal),
               deadline=30.0, message="first shard record")
        stop.set()

    watcher = threading.Thread(target=_interrupt_after_first_shard)
    watcher.start()
    from repro.cli import _campaign_config, _campaign_kwargs

    args = namespace_from_spec(SPEC)
    kwargs = _campaign_kwargs(args)
    kwargs["journal_path"] = str(journal)
    kwargs["resume"] = True
    kwargs["cache_dir"] = str((tmp_path / "home") / "cache")
    campaign = ParallelCampaign(
        _campaign_config(args), stop_event=stop, **kwargs
    )
    with pytest.raises(CampaignInterrupted) as excinfo:
        campaign.run(include_baseline=False, include_profile_mode=False)
    watcher.join()
    assert excinfo.value.completed >= 1
    pre = _journal_units(journal)
    assert pre  # the crash left real completed work behind
    first.close()  # die without marking anything further

    status = _finish_and_check(
        tmp_path, entry.id, _direct_digest(tmp_path_factory), pre,
    )
    assert status["recovered"] is True
    assert status["attempts"] == 2


@pytest.mark.slow
def test_recovery_stage_report_pending(tmp_path, tmp_path_factory):
    """Death after the last shard, before the done record: the rerun
    replays the whole journal (no slot re-executes) and re-derives the
    identical digest."""
    first = CampaignDaemon(tmp_path / "home")
    entry = first.submit(SPEC)
    first.queue.mark(entry.id, "running", attempts=1)
    journal = first.campaign_dir(entry.id) / "journal.jsonl"
    from repro.cli import _campaign_config, _campaign_kwargs

    args = namespace_from_spec(SPEC)
    kwargs = _campaign_kwargs(args)
    kwargs["journal_path"] = str(journal)
    kwargs["resume"] = True
    kwargs["cache_dir"] = str((tmp_path / "home") / "cache")
    campaign = ParallelCampaign(_campaign_config(args), **kwargs)
    campaign.run(include_baseline=False, include_profile_mode=False)
    pre = _journal_units(journal)
    first.close()  # die with every unit journaled but no done record

    status = _finish_and_check(
        tmp_path, entry.id, _direct_digest(tmp_path_factory), pre,
    )
    assert status["recovered"] is True
    # replay only: not a single new shard record was appended
    final = _journal_units(journal)
    assert final == pre


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
def _http(port, method, path, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


@pytest.fixture
def served(tmp_path):
    """A daemon with a controllable runner behind a live HTTP server."""
    gate = threading.Event()
    gate.set()  # runner completes immediately unless a test clears it

    def runner(entry, stop_event):
        gate.wait(10)
        telemetry = (Path(daemon.campaign_dir(entry.id))
                     / "journal.telemetry.jsonl")
        telemetry.parent.mkdir(parents=True, exist_ok=True)
        telemetry.write_text('{"event": "phase_start"}\n')
        export = daemon.campaign_dir(entry.id) / "export"
        export.mkdir(parents=True, exist_ok=True)
        (export / "campaign.json").write_text(
            json.dumps({"server": "apache", "iterations": []})
        )
        (export / "run_manifest.json").write_text(
            json.dumps({"metrics_digest": "served-digest"})
        )
        return {"metrics_digest": "served-digest"}

    daemon = CampaignDaemon(
        tmp_path / "home", runner=runner, queue_capacity=2,
        retry_after=3.0, poll_seconds=0.005,
    )
    server = make_server(daemon)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    daemon.start()
    try:
        yield daemon, server.server_address[1], gate
    finally:
        daemon.drain()
        daemon.wait_drained(10)
        server.shutdown()
        server.server_close()
        daemon.close()


def test_http_submit_status_report_roundtrip(served):
    daemon, port, _gate = served
    code, body, _ = _http(port, "POST", "/submit", SPEC)
    assert code == 202
    campaign_id = json.loads(body)["id"]
    _await(lambda: daemon.status(campaign_id)["state"] == "done",
           message="done over http")
    code, body, _ = _http(port, "GET", f"/status/{campaign_id}")
    assert code == 200
    assert json.loads(body)["metrics_digest"] == "served-digest"
    code, body, _ = _http(port, "GET", f"/report/{campaign_id}")
    assert code == 200
    report = json.loads(body)
    assert report["manifest"]["metrics_digest"] == "served-digest"
    code, body, _ = _http(port, "GET", f"/telemetry/{campaign_id}")
    assert code == 200
    assert b"phase_start" in body
    code, body, _ = _http(port, "GET", "/healthz")
    assert code == 200
    assert json.loads(body)["status"] == "ok"


def test_http_error_mapping(served):
    daemon, port, gate = served
    assert _http(port, "POST", "/submit", {"bogus": 1})[0] == 400
    # valid JSON, wrong shape
    assert _http(port, "POST", "/submit", "not a dict")[0] == 400
    # not JSON at all (bypass the helper's json.dumps)
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/submit", data=b"{torn", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400
    assert _http(port, "GET", "/status/nope")[0] == 404
    assert _http(port, "GET", "/report/nope")[0] == 404
    assert _http(port, "GET", "/telemetry/nope")[0] == 404
    assert _http(port, "GET", "/not/a/route")[0] == 404

    # report before done → 409
    gate.clear()
    code, body, _ = _http(port, "POST", "/submit", SPEC)
    campaign_id = json.loads(body)["id"]
    code, body, _ = _http(port, "GET", f"/report/{campaign_id}")
    assert code == 409
    gate.set()


def test_http_sheds_with_retry_after_then_drains(served):
    daemon, port, gate = served
    gate.clear()  # hold the runner so the queue fills
    assert _http(port, "POST", "/submit", SPEC)[0] == 202
    assert _http(port, "POST", "/submit", SPEC)[0] == 202
    code, body, headers = _http(port, "POST", "/submit", SPEC)
    assert code == 429
    assert headers["Retry-After"] == "3"
    assert json.loads(body)["retry_after"] == 3.0
    gate.set()
    code, body, _ = _http(port, "POST", "/drain", {})
    assert code == 202
    assert _http(port, "POST", "/submit", SPEC)[0] == 503
    code, body, _ = _http(port, "GET", "/healthz")
    assert json.loads(body)["status"] == "draining"


# ----------------------------------------------------------------------
# The chaos gate: SIGKILL a real daemon subprocess mid-campaign
# ----------------------------------------------------------------------
def _spawn_daemon(home):
    repo = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(repo / "src"), env.get("PYTHONPATH"))
        if part
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--home", str(home), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=repo, env=env,
    )
    line = process.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", line)
    assert match, f"no listening line, got {line!r}"
    return process, int(match.group(1))


@pytest.mark.slow
def test_chaos_sigkill_mid_campaign_recovers_identical_digest(
        tmp_path, tmp_path_factory):
    home = tmp_path / "home"
    process, port = _spawn_daemon(home)
    try:
        code, body, _ = _http(port, "POST", "/submit", SPEC)
        assert code == 202
        campaign_id = json.loads(body)["id"]
        journal = home / "campaigns" / campaign_id / "journal.jsonl"
        _await(lambda: journal.exists() and _journal_units(journal),
               deadline=60.0, message="first shard before the kill")
    finally:
        if process.poll() is None:
            os.kill(process.pid, signal.SIGKILL)
        process.wait(10)
    pre = _journal_units(journal)
    queue_states = [
        json.loads(line)
        for line in (home / "queue.jsonl").read_text().splitlines()
    ]
    assert queue_states[-1]["state"] == "running"  # died in flight

    process, port = _spawn_daemon(home)
    try:
        def _done():
            code, body, _ = _http(
                port, "GET", f"/status/{campaign_id}"
            )
            return json.loads(body).get("state") == "done"

        _await(_done, deadline=120.0, message="recovery after SIGKILL")
        code, body, _ = _http(port, "GET", f"/status/{campaign_id}")
        status = json.loads(body)
        assert status["recovered"] is True
        assert status["metrics_digest"] == \
            _direct_digest(tmp_path_factory)
        units = _journal_units(journal)
        assert len(units) == len(set(units))
        assert units[:len(pre)] == pre
        code, body, _ = _http(port, "GET", f"/report/{campaign_id}")
        assert code == 200
        assert json.loads(body)["manifest"]["metrics_digest"] == \
            status["metrics_digest"]
        assert _http(port, "POST", "/drain", {})[0] == 202
    finally:
        process.terminate()
        process.wait(10)
