"""Tier-1 tests for the telemetry stream and the run manifest."""

import json

import pytest

from repro.harness.results import BenchmarkResult, InjectionIteration
from repro.harness.telemetry import (
    RunManifest,
    TelemetryWriter,
    faultload_digest,
    metrics_digest,
    read_telemetry,
)
from repro.specweb.metrics import SpecWebMetrics


def _metrics(spc=10.0):
    return SpecWebMetrics(
        spc=spc, cc_percent=80.0, thr=40.0, rtm_ms=300.0,
        er_percent=2.0, total_ops=1000, total_errors=20,
        measured_seconds=100.0,
    )


def _result(spc=4.0, mis=3):
    result = BenchmarkResult("apache", "nt50", "W2k (sim)")
    result.baseline = _metrics(spc=12.0)
    result.add_iteration(InjectionIteration(
        iteration=1, metrics=_metrics(spc=spc), mis=mis, kns=2, kcp=0,
        faults_injected=50, runtime_stats={"crashes": 7},
        incidents=[{"t": 12.5, "kind": "MIS"}],
    ))
    return result


# ----------------------------------------------------------------------
# Event stream
# ----------------------------------------------------------------------
def test_writer_produces_parseable_ordered_jsonl(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    with TelemetryWriter(path) as telemetry:
        telemetry.emit("campaign_start", workers=4)
        telemetry.emit("shard_done", shard=2, seconds=1.25)
    events = read_telemetry(path)
    # telemetry_open + the two explicit events, seq strictly monotone.
    assert [event["event"] for event in events] == [
        "telemetry_open", "campaign_start", "shard_done",
    ]
    assert [event["seq"] for event in events] == [0, 1, 2]
    assert events[1]["workers"] == 4
    assert events[2]["shard"] == 2


def test_writer_appends_across_reopens(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    with TelemetryWriter(path) as telemetry:
        telemetry.emit("first")
    with TelemetryWriter(path) as telemetry:
        telemetry.emit("second")
    kinds = [event["event"] for event in read_telemetry(path)]
    assert kinds == ["telemetry_open", "first", "telemetry_open",
                     "second"]


def test_read_telemetry_drops_torn_final_line(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    with TelemetryWriter(path) as telemetry:
        telemetry.emit("whole")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 2, "event": "to')  # killed mid-append
    events = read_telemetry(path)
    assert [event["event"] for event in events] == [
        "telemetry_open", "whole",
    ]


def test_emit_is_one_complete_write(tmp_path):
    """Regression: emit() used to issue several handle.write() calls per
    event, so a crash mid-emit could tear a line in the middle of the
    stream — which read_telemetry treats as corruption.  One buffered
    write per record confines any tear to the final line."""
    path = tmp_path / "telemetry.jsonl"
    writes = []
    with TelemetryWriter(path) as telemetry:
        original = telemetry._handle.write

        def recording_write(text):
            writes.append(text)
            return original(text)

        telemetry._handle.write = recording_write
        telemetry.emit("alpha", detail={"nested": [1, 2]})
        telemetry.emit("beta")
    assert len(writes) == 2
    for text in writes:
        assert text.endswith("\n")
        assert text.count("\n") == 1
        json.loads(text)  # each write is a whole, parseable record


def test_journal_append_is_one_complete_write(tmp_path):
    from repro.harness.campaign import CampaignJournal

    journal = CampaignJournal(tmp_path / "campaign.jsonl")
    journal.write_header("k", num_shards=4, iterations=1)
    text = journal.path.read_text()
    assert text.endswith("\n")
    json.loads(text.rstrip("\n"))


def test_read_telemetry_raises_on_mid_stream_corruption(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    path.write_text('{"seq": 0, "event": "ok"}\nnot json\n'
                    '{"seq": 2, "event": "later"}\n')
    with pytest.raises(json.JSONDecodeError):
        read_telemetry(path)


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
def test_metrics_digest_is_stable_and_sensitive():
    digest = metrics_digest(_result())
    assert digest == metrics_digest(_result())
    assert digest != metrics_digest(_result(spc=4.1))
    assert digest != metrics_digest(_result(mis=4))


def test_metrics_digest_ignores_supervision_bookkeeping():
    plain = _result()
    supervised = _result()
    supervised.degraded = True
    supervised.quarantine = [{"iteration": 1, "shard_index": 9}]
    # The digest covers the merged metrics, not how the run got there:
    # the same surviving slots hash identically however they ran.
    assert metrics_digest(plain) == metrics_digest(supervised)


def test_faultload_digest_is_order_sensitive():
    class Location:
        def __init__(self, fault_id):
            self.fault_id = fault_id

    forward = [Location("a"), Location("b")]
    backward = [Location("b"), Location("a")]
    assert faultload_digest(forward) != faultload_digest(backward)
    assert faultload_digest(forward) == faultload_digest(forward)


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------
def _manifest(**overrides):
    fields = dict(
        campaign_key="deadbeef",
        server="apache",
        os_codename="nt50",
        os_display="W2k (sim)",
        seed=2004,
        build_fingerprint="f" * 64,
        faultload_digest="a" * 64,
        slots=96,
        workers=4,
        slots_per_shard=6,
        num_shards=16,
        iterations=3,
        journal_version=2,
        phase_timings={"baseline": 1.5, "iteration-1": 4.0},
        supervision={"retries": 1, "pool_rebuilds": 0,
                     "serial_fallback": False, "quarantined": [],
                     "degraded": False},
        metrics_digest="b" * 64,
        created_at=1_700_000_000.0,
    )
    fields.update(overrides)
    return RunManifest(**fields)


def test_manifest_roundtrips_through_disk(tmp_path):
    manifest = _manifest()
    path = manifest.write(tmp_path / "nested" / "run.manifest.json")
    assert path.exists()
    loaded = RunManifest.load(path)
    assert loaded == manifest


def test_manifest_json_is_sorted_and_complete(tmp_path):
    manifest = _manifest()
    path = manifest.write(tmp_path / "run.manifest.json")
    payload = json.loads(path.read_text())
    assert list(payload) == sorted(payload)
    for field in ("campaign_key", "seed", "build_fingerprint",
                  "faultload_digest", "workers", "phase_timings",
                  "supervision", "metrics_digest", "manifest_version"):
        assert field in payload
