"""Tier-1 tests for the shard supervisor.

The supervisor is generic over the task it runs, which is what these
tests exploit: a top-level ``_behave`` task interprets a behaviour
encoded in each shard's fault ids (``ok``, ``crash``, ``kill``,
``hang``, plus ``*_once`` transient variants that leave a marker file
so the retry succeeds) and simulates every failure mode the supervisor
must absorb — without a campaign underneath.
"""

import os
import signal
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path

import pytest

from repro.harness.campaign import CampaignShard
from repro.harness.supervisor import ShardSupervisor
from repro.harness.telemetry import TelemetryWriter, read_telemetry


@dataclass(frozen=True)
class FakeLocation:
    fault_id: str


def make_shard(index, behaviour="ok"):
    return CampaignShard(
        index=index,
        first_slot=index * 2,
        locations=(
            FakeLocation(f"{behaviour}#{index}#a"),
            FakeLocation(f"{behaviour}#{index}#b"),
        ),
    )


def _behave(marker_dir, shard):
    """Worker task: act out the behaviour named in the shard's fault ids."""
    behaviour = shard.locations[0].fault_id.split("#")[0]
    if behaviour.endswith("_once"):
        marker = Path(marker_dir) / f"once-{shard.index}"
        if marker.exists():
            behaviour = "ok"
        else:
            marker.write_text("tried")
            behaviour = behaviour[: -len("_once")]
    if behaviour == "crash":
        raise ValueError(f"boom in shard {shard.index}")
    if behaviour == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if behaviour == "hang":
        time.sleep(60.0)
    return {"shard": shard.index}


def run_supervised(tmp_path, shards, **kwargs):
    kwargs.setdefault("poll_seconds", 0.02)
    with ShardSupervisor(**kwargs) as supervisor:
        return supervisor.run(shards, partial(_behave, str(tmp_path)))


# ----------------------------------------------------------------------
# Healthy paths
# ----------------------------------------------------------------------
def test_all_shards_complete_in_pool_mode(tmp_path):
    shards = [make_shard(i) for i in range(4)]
    report = run_supervised(tmp_path, shards, workers=2)
    assert sorted(report.outcomes) == [0, 1, 2, 3]
    assert report.quarantined == []
    assert report.retries == 0
    assert not report.degraded


def test_all_shards_complete_serially(tmp_path):
    shards = [make_shard(i) for i in range(3)]
    report = run_supervised(tmp_path, shards, workers=1)
    assert sorted(report.outcomes) == [0, 1, 2]
    assert not report.degraded


def test_on_outcome_called_per_completion(tmp_path):
    seen = []
    shards = [make_shard(i) for i in range(3)]
    with ShardSupervisor(workers=1) as supervisor:
        supervisor.run(shards, partial(_behave, str(tmp_path)),
                       on_outcome=seen.append)
    assert sorted(outcome["shard"] for outcome in seen) == [0, 1, 2]


def test_empty_shard_list(tmp_path):
    report = run_supervised(tmp_path, [], workers=2)
    assert report.outcomes == {}
    assert not report.degraded


# ----------------------------------------------------------------------
# Crash: a worker task that raises
# ----------------------------------------------------------------------
def test_transient_crash_is_retried_to_success(tmp_path):
    shards = [make_shard(0, "crash_once"), make_shard(1), make_shard(2)]
    report = run_supervised(tmp_path, shards, workers=2, max_retries=2)
    assert sorted(report.outcomes) == [0, 1, 2]
    assert report.retries == 1
    assert report.quarantined == []


def test_persistent_crash_is_quarantined(tmp_path):
    shards = [make_shard(0, "crash"), make_shard(1), make_shard(2)]
    report = run_supervised(tmp_path, shards, workers=2, max_retries=1)
    assert sorted(report.outcomes) == [1, 2]
    assert len(report.quarantined) == 1
    poisoned = report.quarantined[0]
    assert poisoned.shard_index == 0
    assert poisoned.attempts == 2  # initial try + 1 retry
    assert all("crash" in failure for failure in poisoned.failures)
    assert poisoned.fault_ids == ("crash#0#a", "crash#0#b")
    assert report.degraded


def test_serial_mode_also_quarantines(tmp_path):
    shards = [make_shard(0, "crash"), make_shard(1)]
    report = run_supervised(tmp_path, shards, workers=1, max_retries=0)
    assert sorted(report.outcomes) == [1]
    assert [q.shard_index for q in report.quarantined] == [0]


# ----------------------------------------------------------------------
# Worker death: SIGKILL breaks the whole pool
# ----------------------------------------------------------------------
def test_killed_worker_recovers_on_rebuilt_pool(tmp_path):
    shards = [make_shard(0, "kill_once"), make_shard(1), make_shard(2),
              make_shard(3)]
    report = run_supervised(tmp_path, shards, workers=2, max_retries=2)
    assert sorted(report.outcomes) == [0, 1, 2, 3]
    assert report.quarantined == []
    assert report.pool_rebuilds >= 1


def test_poison_kill_quarantines_only_the_offender(tmp_path):
    """Probation isolates the shard that keeps killing its worker:
    the neighbours sharing its pool are never charged for its deaths."""
    shards = [make_shard(0, "kill"), make_shard(1), make_shard(2),
              make_shard(3)]
    report = run_supervised(tmp_path, shards, workers=2, max_retries=1,
                            max_pool_rebuilds=10)
    assert sorted(report.outcomes) == [1, 2, 3]
    assert [q.shard_index for q in report.quarantined] == [0]
    poisoned = report.quarantined[0]
    assert poisoned.attempts == 2
    assert all("worker died" in failure for failure in poisoned.failures)
    assert report.degraded


def test_repeated_pool_loss_falls_back_to_serial(tmp_path):
    shards = [make_shard(0, "kill_once"), make_shard(1), make_shard(2)]
    report = run_supervised(tmp_path, shards, workers=2, max_retries=3,
                            max_pool_rebuilds=0)
    # The first kill exhausts the pool budget; the survivors (including
    # the killer's now-marked retry) finish in-process.
    assert sorted(report.outcomes) == [0, 1, 2]
    assert report.serial_fallback
    assert report.quarantined == []


# ----------------------------------------------------------------------
# Hang: a shard that exceeds its wall-clock deadline
# ----------------------------------------------------------------------
def test_hung_shard_is_quarantined_others_survive(tmp_path):
    shards = [make_shard(0, "hang"), make_shard(1), make_shard(2)]
    report = run_supervised(tmp_path, shards, workers=2, max_retries=0,
                            shard_timeout=0.5)
    assert sorted(report.outcomes) == [1, 2]
    assert [q.shard_index for q in report.quarantined] == [0]
    assert any("hang" in failure
               for failure in report.quarantined[0].failures)
    assert report.pool_rebuilds >= 1


def test_transient_hang_is_retried(tmp_path):
    shards = [make_shard(0, "hang_once"), make_shard(1)]
    report = run_supervised(tmp_path, shards, workers=2, max_retries=1,
                            shard_timeout=0.5)
    assert sorted(report.outcomes) == [0, 1]
    assert report.retries == 1
    assert report.quarantined == []


# ----------------------------------------------------------------------
# Parameter validation + telemetry
# ----------------------------------------------------------------------
def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ShardSupervisor(workers=2, shard_timeout=0.0)
    with pytest.raises(ValueError):
        ShardSupervisor(workers=2, max_retries=-1)


def test_supervision_events_are_streamed(tmp_path):
    shards = [make_shard(0, "crash_once"), make_shard(1)]
    telemetry_path = tmp_path / "events.jsonl"
    with TelemetryWriter(telemetry_path) as telemetry:
        with ShardSupervisor(workers=2, max_retries=2,
                             poll_seconds=0.02,
                             telemetry=telemetry) as supervisor:
            supervisor.run(shards, partial(_behave, str(tmp_path)))
    events = read_telemetry(telemetry_path)
    kinds = [event["event"] for event in events]
    assert kinds.count("shard_done") == 2
    assert "shard_retry" in kinds
    assert "shard_dispatch" in kinds
    # Sequence numbers are monotone: the stream is replayable in order.
    assert [event["seq"] for event in events] == list(range(len(events)))
