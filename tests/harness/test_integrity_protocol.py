"""Integration tests for contamination containment (DESIGN.md §10).

The seeded fault is ``ntdll50:RtlFreeHeap:MIA:5`` — removing that guard
makes frees silently leak, so every slot it is active leaves residual
heap blocks the slot-gap audit must catch: audit → contaminated-slot
flag → verified reboot → clean continuation.
"""

import json

import pytest

from repro.faults.faultload import Faultload
from repro.harness.campaign import (
    ParallelCampaign,
    ShardOutcome,
    merge_outcomes,
)
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import WebServerExperiment
from repro.specweb.metrics import MetricsPartial

LEAK_FAULT = "repro.ossim.modules.ntdll50:RtlFreeHeap:MIA:5"


def smoke_config(**overrides):
    config = ExperimentConfig.smoke()
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def seeded_faultload(config, leak_slots=1, benign_slots=2):
    """``leak_slots`` copies of the leaking fault, then benign slots."""
    experiment = WebServerExperiment(config)
    raw = experiment.raw_faultload()
    by_id = {location.fault_id: location for location in raw}
    leak = by_id[LEAK_FAULT]
    benign = [
        location for location in raw
        if "RtlFreeHeap" not in location.fault_id
        and location.fault_id.split(":")[2] == "MVI"
    ][:benign_slots]
    assert len(benign) == benign_slots
    return Faultload(
        config.os_codename,
        tuple([leak] * leak_slots + benign),
        name="seeded-leak",
        prepared=True,
    )


# ----------------------------------------------------------------------
# Audit -> flag -> verified reboot -> clean continuation
# ----------------------------------------------------------------------
def test_heap_leak_triggers_verified_reboot_and_clean_continuation():
    config = smoke_config()
    experiment = WebServerExperiment(config)
    faultload = seeded_faultload(config)
    run = experiment.run_slots(faultload, iteration=1)
    assert run.faults_injected == len(faultload)
    # Slot 0 (the leak) was flagged and rebooted away.
    assert len(run.contaminated_slots) == 1
    record = run.contaminated_slots[0]
    assert record["slot"] == 0
    assert record["fault_id"] == LEAK_FAULT
    assert record["kinds"] == ["heap-leak"]
    assert record["rebooted"] is True
    assert run.reboots == [{"after_slot": 0, "verified": True}]
    # The reboot split the run into two machine epochs, and the benign
    # slots after it ran on the clean machine without new flags.
    assert len(run.segments) == 2
    assert [len(windows) for _machine, windows in run.segments] == [1, 2]
    # The merged metrics cover all three slots.
    metrics = run.compute_metrics(
        config.client.connections, config.conformance_slots
    )
    assert metrics.total_ops > 0
    assert metrics.measured_seconds == pytest.approx(
        3 * config.rules.slot_seconds
    )


def test_reboot_budget_exhaustion_degrades_gracefully():
    config = smoke_config(reboot_budget=1)
    experiment = WebServerExperiment(config)
    faultload = seeded_faultload(config, leak_slots=3, benign_slots=1)
    run = experiment.run_slots(faultload, iteration=1)
    # Only the first leak earned a reboot.  After the budget is spent
    # the machine stays dirty, so the remaining leak slots AND the
    # benign slot that follows them are all flagged: residual damage
    # keeps being attributed until a reboot clears it.
    assert len(run.contaminated_slots) == 4
    assert [r["rebooted"] for r in run.contaminated_slots] == [
        True, False, False, False,
    ]
    assert len(run.reboots) == 1
    # The run still completed every slot on the contaminated machine.
    assert run.faults_injected == len(faultload)
    assert len(run.segments) == 2


def test_auditing_can_be_disabled():
    config = smoke_config(integrity_audit=False)
    experiment = WebServerExperiment(config)
    faultload = seeded_faultload(config)
    run = experiment.run_slots(faultload, iteration=1)
    assert not run.integrity_enabled
    assert run.audits_performed == 0
    assert run.contaminated_slots == []
    assert len(run.segments) == 1
    iteration = experiment.run_injection(faultload, iteration=1)
    assert iteration.residual_errors is None
    assert iteration.as_row()["RES"] is None


def test_run_injection_carries_contamination_records():
    config = smoke_config()
    experiment = WebServerExperiment(config)
    faultload = seeded_faultload(config)
    iteration = experiment.run_injection(faultload, iteration=1)
    assert iteration.integrity_enabled
    assert iteration.residual_errors == 1
    assert iteration.as_row()["RES"] == 1
    assert iteration.reboots[0]["verified"] is True


# ----------------------------------------------------------------------
# Determinism: reboots must not break workers=1 vs workers=N parity
# ----------------------------------------------------------------------
def contamination_view(result):
    return [
        (it.iteration, it.contaminated_slots, it.reboots)
        for it in result.iterations
    ]


def test_campaign_digest_identical_across_workers_with_reboots():
    from repro.harness.telemetry import metrics_digest

    config = smoke_config()
    config.rules = type(config.rules)(
        warmup_seconds=3.0, rampup_seconds=1.0, rampdown_seconds=1.0,
        iterations=1, slot_seconds=4.0, slot_gap_seconds=1.0,
        baseline_seconds=12.0,
    )
    faultload = seeded_faultload(config, leak_slots=2, benign_slots=4)

    def run(workers):
        return ParallelCampaign(
            config, workers=workers, slots_per_shard=2
        ).run(
            faultload=faultload,
            include_baseline=False, include_profile_mode=False,
        )

    serial = run(1)
    parallel = run(2)
    # The seeded leaks really did contaminate and reboot.
    assert sum(
        len(it.contaminated_slots) for it in serial.iterations
    ) == 2
    assert sum(len(it.reboots) for it in serial.iterations) == 2
    assert contamination_view(serial) == contamination_view(parallel)
    assert metrics_digest(serial) == metrics_digest(parallel)


def test_manifest_reports_integrity_summary(tmp_path):
    config = smoke_config()
    config.fault_sample = None
    faultload = seeded_faultload(config, leak_slots=1, benign_slots=3)
    campaign = ParallelCampaign(
        config, workers=1, slots_per_shard=2,
        journal_path=tmp_path / "campaign.jsonl",
    )
    campaign.run(
        faultload=faultload,
        include_baseline=False, include_profile_mode=False,
    )
    manifest = campaign.manifest
    assert manifest.integrity["enabled"] is True
    assert manifest.integrity["contaminated_slots"] == 1
    assert manifest.integrity["reboots"] == 1
    assert manifest.integrity["unrebooted_contamination"] == 0
    assert manifest.integrity["violation_kinds"] == {"heap-leak": 1}
    # The manifest on disk round-trips the integrity block.
    from repro.harness.telemetry import RunManifest, read_telemetry

    loaded = RunManifest.load(tmp_path / "campaign.manifest.json")
    assert loaded.integrity == manifest.integrity
    events = read_telemetry(tmp_path / "campaign.telemetry.jsonl")
    summaries = [e for e in events if e["event"] == "integrity_summary"]
    assert len(summaries) == 1
    assert summaries[0]["contaminated_slots"] == 1
    shard_done = [e for e in events if e["event"] == "shard_done"]
    assert any(e.get("contaminated_slots") for e in shard_done)


# ----------------------------------------------------------------------
# Journal / merge plumbing
# ----------------------------------------------------------------------
def test_shard_outcome_roundtrips_contamination_records():
    outcome = ShardOutcome(
        shard_index=1, first_slot=2, num_slots=2,
        partial=MetricsPartial(total_ops=5, total_errors=0,
                               latency_sum=0.5, latency_count=5,
                               conforming_sum=2.0, group_count=1,
                               measured_seconds=8.0),
        mis=0, kns=0, kcp=0, faults_injected=2,
        runtime_stats={},
        contaminated_slots=[{
            "fault_id": "f", "kinds": ["heap-leak"], "rebooted": True,
            "slot": 2, "violations": 1,
        }],
        reboots=[{"after_slot": 2, "verified": True}],
        integrity_enabled=True,
    )
    restored = ShardOutcome.from_dict(
        json.loads(json.dumps(outcome.to_dict()))
    )
    assert restored == outcome


def test_merge_outcomes_concatenates_in_slot_order():
    def outcome(index, slot):
        return ShardOutcome(
            shard_index=index, first_slot=slot, num_slots=1,
            partial=MetricsPartial(), mis=0, kns=0, kcp=0,
            faults_injected=1, runtime_stats={},
            contaminated_slots=[{"slot": slot, "kinds": ["heap-leak"],
                                 "fault_id": "f", "rebooted": True,
                                 "violations": 1}],
            reboots=[{"after_slot": slot, "verified": True}],
            integrity_enabled=True,
        )

    merged = merge_outcomes(
        [outcome(1, 1), outcome(0, 0)], iteration=1, num_connections=8
    )
    assert [r["slot"] for r in merged.contaminated_slots] == [0, 1]
    assert [r["after_slot"] for r in merged.reboots] == [0, 1]
    assert merged.integrity_enabled
    assert merged.residual_errors == 2
