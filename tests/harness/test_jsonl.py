"""Tier-1 tests for the shared JSONL torn-tail reader and the backoff
policy — the two small robustness primitives under the campaign
journal, the telemetry reader, the service spec queue, and every
reconnect/retry loop.
"""

import json

import pytest

from repro.harness.backoff import BackoffPolicy
from repro.harness.jsonl import read_jsonl


# ----------------------------------------------------------------------
# read_jsonl: the one torn-tail policy everything shares
# ----------------------------------------------------------------------
def test_read_jsonl_parses_with_line_numbers(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\n\n{"b": 2}\n')
    assert read_jsonl(path) == [(1, {"a": 1}), (2, {"b": 2})]


def test_read_jsonl_missing_file_is_empty(tmp_path):
    assert read_jsonl(tmp_path / "absent.jsonl") == []


def test_read_jsonl_drops_torn_final_line(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\n{"b": 2}\n{"c": ')
    assert read_jsonl(path) == [(1, {"a": 1}), (2, {"b": 2})]


def test_read_jsonl_torn_interior_line_raises(tmp_path):
    # A torn line *followed by* valid records is not a crash artifact —
    # it is corruption, and silently skipping it would drop data.
    path = tmp_path / "log.jsonl"
    path.write_text('{"a": 1}\n{"b": \n{"c": 3}\n')
    with pytest.raises(json.JSONDecodeError):
        read_jsonl(path)


def test_campaign_journal_shares_torn_tail_policy(tmp_path):
    """Regression for the shared reader: CampaignJournal.load must
    tolerate a torn final line (rerunning that unit) exactly as the
    service spec queue does."""
    from repro.harness.campaign import JOURNAL_VERSION, CampaignJournal

    path = tmp_path / "journal.jsonl"
    journal = CampaignJournal(path)
    journal.write_header("key", num_shards=2, iterations=1)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "shard", "iteration": 1, "sha')
    loaded = CampaignJournal.load(path)
    assert loaded.header["campaign_key"] == "key"
    assert loaded.shards == {}  # torn record dropped → unit reruns


# ----------------------------------------------------------------------
# BackoffPolicy
# ----------------------------------------------------------------------
def test_backoff_grows_exponentially_and_caps():
    policy = BackoffPolicy(base=1.0, factor=2.0, max_delay=5.0,
                           jitter=0.0)
    assert [policy.delay(n) for n in range(1, 6)] == \
        [1.0, 2.0, 4.0, 5.0, 5.0]


def test_backoff_jitter_is_deterministic_per_seed_and_attempt():
    one = BackoffPolicy(base=1.0, jitter=0.5, seed="worker-a")
    same = BackoffPolicy(base=1.0, jitter=0.5, seed="worker-a")
    other = BackoffPolicy(base=1.0, jitter=0.5, seed="worker-b")
    assert one.delay(3) == same.delay(3)  # reproducible schedules
    assert one.delay(3) != other.delay(3)  # fleets spread apart
    assert one.delay(2) != one.delay(3)
    raw = min(one.max_delay, one.base * one.factor ** 2)
    assert raw <= one.delay(3) < raw * 1.5  # within the jitter band


def test_backoff_validates_parameters():
    with pytest.raises(ValueError):
        BackoffPolicy(base=0)
    with pytest.raises(ValueError):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=-0.1)
    with pytest.raises(ValueError):
        BackoffPolicy().delay(0)
