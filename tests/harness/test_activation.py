"""Tier-1 tests: the fault-activation layer (DESIGN.md §11).

The contract under test, end to end:

* mutants compiled without a tracker are byte-identical to the
  pre-activation harness (zero cost when untraced), and the probed
  variant differs only by the planted entry probe;
* the ``__gswfit_activation__`` hook lives in the FIT module for exactly
  the lifetime of an injection (refcounted across overlapping faults);
* a real slot walk observes activations through the probe;
* campaigns stay bit-deterministic across worker counts — digests and
  per-slot activation records identical for workers=1 vs workers=4,
  with and without ``--adaptive-slots``, on both OS builds;
* adaptive scheduling only ever truncates slots whose fault never
  activated.
"""

import pytest

from repro.gswfit import ACTIVATION_HOOK, ActivationTracker
from repro.gswfit.injector import FaultInjector
from repro.gswfit.mutator import build_mutant, resolve_module
from repro.gswfit.scanner import scan_build
from repro.harness.campaign import (
    ParallelCampaign,
    derive_activation_deadlines,
)
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import WebServerExperiment
from repro.ossim.builds import NT50


def tiny_config(fault_sample=6, os_codename="nt50"):
    config = ExperimentConfig.smoke()
    config.os_codename = os_codename
    config.fault_sample = fault_sample
    config.rules = type(config.rules)(
        warmup_seconds=3.0, rampup_seconds=1.0, rampdown_seconds=1.0,
        iterations=1, slot_seconds=4.0, slot_gap_seconds=1.0,
        baseline_seconds=12.0,
    )
    return config


# ----------------------------------------------------------------------
# Probe and hook mechanics
# ----------------------------------------------------------------------
def test_unprobed_mutant_identical_probed_differs():
    location = scan_build(NT50)[0]
    _, plain_a = build_mutant(location)
    _, plain_b = build_mutant(location)
    _, probed = build_mutant(location, probed=True)
    assert plain_a.co_code == plain_b.co_code
    assert probed.co_code != plain_a.co_code
    # The probe references the hook by name; the plain mutant must not.
    assert ACTIVATION_HOOK in probed.co_names
    assert ACTIVATION_HOOK not in plain_a.co_names


def test_hook_lifetime_tracks_injections():
    faultload = scan_build(NT50)
    first = faultload[0]
    # A second fault in the same module exercises the refcount.
    second = next(
        loc for loc in faultload
        if loc.module == first.module and loc.function != first.function
    )
    module = resolve_module(first.module)
    tracker = ActivationTracker(clock=lambda: 0.0)
    injector = FaultInjector(activation_tracker=tracker)

    assert not hasattr(module, ACTIVATION_HOOK)
    injector.inject(first)
    assert getattr(module, ACTIVATION_HOOK) == tracker.record
    injector.inject(second)
    injector.restore(first)
    assert getattr(module, ACTIVATION_HOOK) == tracker.record
    injector.restore(second)
    assert not hasattr(module, ACTIVATION_HOOK)

    # Without a tracker, no hook is ever published.
    plain = FaultInjector()
    plain.inject(first)
    assert not hasattr(module, ACTIVATION_HOOK)
    plain.restore_all()


def test_tracker_records_first_hit_once():
    times = iter([3.25, 4.5, 9.0])
    tracker = ActivationTracker(clock=lambda: next(times))
    tracker.begin("f1")
    assert tracker.hits("f1") == 0
    tracker.record("f1")
    tracker.record("f1")
    record = tracker.take("f1")
    assert record.hits == 2
    assert record.first_hit == 3.25
    assert tracker.take("f1") is None
    # Unopened fault ids are recorded defensively, never raised on.
    tracker.record("stray")
    assert tracker.hits("stray") == 1


def test_slot_walk_observes_activations():
    config = tiny_config(fault_sample=6)
    experiment = WebServerExperiment(config)
    faultload = experiment.prepared_faultload()
    result = experiment.run_slots(faultload, iteration=1)
    assert result.activation_enabled
    assert len(result.activations) == result.faults_injected
    assert result.faults_activated > 0
    for record in result.activations:
        assert record["hits"] >= 0
        if record["hits"]:
            assert 0.0 <= record["first_hit"] <= config.rules.slot_seconds
        else:
            assert record["first_hit"] is None


# ----------------------------------------------------------------------
# Campaign determinism across worker counts, builds, and modes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("os_codename", ["nt50", "nt51"])
@pytest.mark.parametrize("adaptive", [False, True])
def test_campaign_activation_determinism(os_codename, adaptive):
    def run(workers):
        config = tiny_config(os_codename=os_codename)
        config.adaptive_slots = adaptive
        campaign = ParallelCampaign(config, workers=workers)
        result = campaign.run(
            include_baseline=False, include_profile_mode=False
        )
        return result, campaign.manifest

    serial, serial_manifest = run(workers=1)
    parallel, parallel_manifest = run(workers=4)
    assert serial_manifest.metrics_digest == parallel_manifest.metrics_digest
    for a, b in zip(serial.iterations, parallel.iterations):
        assert a.activations == b.activations
        assert a.faults_activated == b.faults_activated
        assert a.slots_truncated == b.slots_truncated
        assert a.truncated_seconds == b.truncated_seconds
    assert serial_manifest.activation == parallel_manifest.activation
    assert serial_manifest.activation["enabled"]
    assert serial_manifest.activation["adaptive"] == adaptive


# ----------------------------------------------------------------------
# Adaptive scheduling semantics
# ----------------------------------------------------------------------
def test_deadline_table_derived_from_profile():
    config = tiny_config()
    config.adaptive_slots = True
    deadlines = derive_activation_deadlines(config)
    assert deadlines, "profiling trace observed no functions"
    for function, deadline in deadlines.items():
        assert 0.0 < deadline <= config.rules.slot_seconds, function


def test_adaptive_truncates_only_inactive_slots():
    config = tiny_config(fault_sample=8)
    config.adaptive_slots = True
    # A degenerate deadline table: every function's window has already
    # passed at the first instant, so every slot whose fault has not
    # activated immediately is truncated — deterministically exercising
    # the truncation path regardless of which faults were sampled.
    config.activation_deadlines = {
        function: 1e-6 for function in scan_build(NT50).functions()
    }
    campaign = ParallelCampaign(config, workers=1)
    result = campaign.run(
        include_baseline=False, include_profile_mode=False
    )
    iteration = result.iterations[0]
    assert iteration.slots_truncated > 0
    assert iteration.truncated_seconds > 0.0
    truncated = 0
    for record in iteration.activations:
        if record["truncated"]:
            truncated += 1
            assert record["hits"] == 0, (
                "an activated slot must never be truncated"
            )
    assert truncated == iteration.slots_truncated
