"""Tier-1 tests: journal and fragment version skew.

A journal written by an older (or newer) build of this repo must never
crash a resume, and must never be merged either — half-schema outcomes
would silently change the digest.  The correct behaviour is always the
same: warn, drop the unreadable units, rerun them.  Reruns are
deterministic, so the healed campaign's digest equals an uninterrupted
run's.
"""

import json

import pytest

from repro.harness.campaign import (
    JOURNAL_VERSION,
    CampaignJournal,
    ParallelCampaign,
)
from tests.harness.test_supervised_campaign import tiny_config


def _run(tmp_path, name, resume=False):
    campaign = ParallelCampaign(
        tiny_config(), workers=1,
        journal_path=tmp_path / name / "journal.jsonl", resume=resume,
    )
    campaign.run(include_baseline=False, include_profile_mode=False)
    return campaign


def _rewrite_header_version(journal_path, version):
    lines = journal_path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "header"
    header["version"] = version
    lines[0] = json.dumps(header, sort_keys=True)
    journal_path.write_text("\n".join(lines) + "\n")


@pytest.mark.parametrize("skewed_version", [4, JOURNAL_VERSION + 1],
                         ids=["older", "newer"])
def test_load_drops_units_of_skewed_journal(tmp_path, skewed_version):
    campaign = _run(tmp_path, "seed")
    journal_path = campaign.journal_path
    assert CampaignJournal.load(journal_path).shards
    _rewrite_header_version(journal_path, skewed_version)
    with pytest.warns(RuntimeWarning, match="will rerun"):
        journal = CampaignJournal.load(journal_path)
    assert journal.header is not None  # kept for diagnostics
    assert journal.shards == {}        # nothing replayed
    assert journal.phases == {}


def test_resume_over_skewed_journal_warns_reruns_and_matches(tmp_path):
    """The end-to-end property: resume over a pre-v5 journal warns,
    reruns everything, and lands on the uninterrupted digest."""
    reference = _run(tmp_path, "reference")
    skewed = _run(tmp_path, "skewed")
    _rewrite_header_version(skewed.journal_path, JOURNAL_VERSION - 1)
    with pytest.warns(RuntimeWarning, match="will rerun"):
        resumed = _run(tmp_path, "skewed", resume=True)
    assert (resumed.manifest.metrics_digest
            == reference.manifest.metrics_digest)
    # The healed journal is a current-version one again.
    journal = CampaignJournal.load(resumed.journal_path)
    assert journal.header["version"] == JOURNAL_VERSION
    assert journal.shards


def test_resume_still_rejects_foreign_campaign(tmp_path):
    """Version tolerance must not weaken the key check: a journal from
    a *different* campaign stays a hard error."""
    campaign = _run(tmp_path, "seed")
    lines = campaign.journal_path.read_text().splitlines()
    header = json.loads(lines[0])
    header["campaign_key"] = "0" * 64
    lines[0] = json.dumps(header, sort_keys=True)
    campaign.journal_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="different campaign"):
        _run(tmp_path, "seed", resume=True)


def test_unreadable_shard_record_reruns_that_unit(tmp_path):
    """A single fragment today's schema cannot rebuild (e.g. written by
    a skewed fabric worker) drops only that unit; intact neighbours
    still replay."""
    campaign = _run(tmp_path, "seed")
    journal_path = campaign.journal_path
    intact = CampaignJournal.load(journal_path)
    assert len(intact.shards) >= 2
    lines = journal_path.read_text().splitlines()
    mangled = []
    broke = False
    for line in lines:
        entry = json.loads(line)
        if not broke and entry.get("kind") == "shard":
            # An unknown-schema fragment: the partial is unreadable.
            entry["outcome"]["partial"] = {"schema": "from-the-future"}
            line = json.dumps(entry, sort_keys=True)
            broke = True
        mangled.append(line)
    journal_path.write_text("\n".join(mangled) + "\n")
    with pytest.warns(RuntimeWarning, match="unreadable shard record"):
        journal = CampaignJournal.load(journal_path)
    assert len(journal.shards) == len(intact.shards) - 1
    # And the campaign heals it on resume, landing on the same digest.
    resumed = _run(tmp_path, "seed", resume=True)
    reference = _run(tmp_path, "reference")
    assert (resumed.manifest.metrics_digest
            == reference.manifest.metrics_digest)
