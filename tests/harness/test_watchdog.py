"""Tests for the watchdog's MIS/KNS/KCP classification."""

import pytest

from repro.harness.watchdog import Watchdog
from repro.sim.kernel import Simulator


class FakeRuntime:
    """A runtime whose observable health is fully scripted."""

    def __init__(self):
        self.dead = False
        self.last_attempt_time = -1.0
        self.last_success_time = -1.0
        self.cpu_hog_recent = False
        self.restart_results = []
        self.restart_calls = 0

    def is_dead(self):
        return self.dead

    def restart(self):
        self.restart_calls += 1
        if self.restart_results:
            ok = self.restart_results.pop(0)
        else:
            ok = True
        if ok:
            self.dead = False
            self.cpu_hog_recent = False
        return ok


@pytest.fixture
def world():
    sim = Simulator()
    runtime = FakeRuntime()
    watchdog = Watchdog(sim, runtime, poll_seconds=1.0,
                        unresponsive_after=4.0)
    return sim, runtime, watchdog


def test_healthy_server_untouched(world):
    sim, runtime, watchdog = world
    runtime.last_attempt_time = 0.0
    runtime.last_success_time = 0.0
    watchdog.start()
    sim.run_until(10.0)
    runtime.last_attempt_time = 9.9
    runtime.last_success_time = 9.9
    sim.run_until(20.0)
    assert watchdog.counters() == {"MIS": 0, "KNS": 0, "KCP": 0}
    assert runtime.restart_calls == 0


def test_dead_server_counts_mis_once_and_restarts(world):
    sim, runtime, watchdog = world
    runtime.dead = True
    watchdog.start()
    sim.run_until(1.5)
    assert watchdog.mis == 1
    assert runtime.restart_calls == 1
    assert not runtime.dead


def test_failed_restart_does_not_recount_mis(world):
    sim, runtime, watchdog = world
    runtime.dead = True
    runtime.restart_results = [False, False, True]
    watchdog.start()
    sim.run_until(3.5)
    assert watchdog.mis == 1  # one death, several repair attempts
    assert runtime.restart_calls == 3
    assert not runtime.dead


def test_second_death_counts_again(world):
    sim, runtime, watchdog = world
    runtime.dead = True
    watchdog.start()
    sim.run_until(1.5)
    runtime.dead = True
    sim.run_until(2.5)
    assert watchdog.mis == 2


def test_unresponsive_with_demand_is_kns(world):
    sim, runtime, watchdog = world
    watchdog.start()
    sim.run_until(5.0)
    runtime.last_attempt_time = sim.now  # demand now
    runtime.last_success_time = 0.1      # stale success
    sim.run_until(6.5)
    assert watchdog.kns == 1
    assert watchdog.kcp == 0
    assert runtime.restart_calls == 1


def test_unresponsive_with_cpu_burn_is_kcp(world):
    sim, runtime, watchdog = world
    watchdog.start()
    sim.run_until(5.0)
    runtime.last_attempt_time = sim.now
    runtime.last_success_time = 0.1
    runtime.cpu_hog_recent = True
    sim.run_until(6.5)
    assert watchdog.kcp == 1
    assert watchdog.kns == 0


def test_no_demand_no_kns(world):
    """Silence without requests is unobservable, not a failure."""
    sim, runtime, watchdog = world
    watchdog.start()
    runtime.last_attempt_time = 0.5
    runtime.last_success_time = 0.5
    sim.run_until(30.0)  # long quiet period
    assert watchdog.kns == 0


def test_admf_is_sum(world):
    _sim, _runtime, watchdog = world
    watchdog.mis, watchdog.kns, watchdog.kcp = 3, 2, 1
    assert watchdog.admf == 6


def test_stop_halts_polling(world):
    sim, runtime, watchdog = world
    runtime.dead = True
    watchdog.start()
    watchdog.stop()
    sim.run_until(10.0)
    assert watchdog.mis == 0


def test_check_now_usable_without_polling(world):
    sim, runtime, watchdog = world
    runtime.dead = True
    watchdog.check_now()
    assert watchdog.mis == 1


def test_restart_storm_capped_at_max_attempts():
    """Regression: a fault that kills the child at startup turned every
    poll into a futile restart — unbounded restart storm."""
    sim = Simulator()
    runtime = FakeRuntime()
    watchdog = Watchdog(sim, runtime, poll_seconds=1.0,
                        max_restart_attempts=5)
    runtime.dead = True
    runtime.restart_results = [False] * 100
    watchdog.start()
    sim.run_until(50.0)
    assert runtime.restart_calls == 5  # capped, not one per poll
    assert watchdog.mis == 1  # still a single death incident
    exhausted = [i for i in watchdog.incidents
                 if i["kind"] == "RESTART_EXHAUSTED"]
    assert len(exhausted) == 1  # recorded once, not per poll


def test_retry_exhausted_rearms_the_budget():
    sim = Simulator()
    runtime = FakeRuntime()
    watchdog = Watchdog(sim, runtime, poll_seconds=1.0,
                        max_restart_attempts=2)
    runtime.dead = True
    runtime.restart_results = [False] * 10
    watchdog.start()
    sim.run_until(10.0)
    assert runtime.restart_calls == 2
    # The slot gap removed the fault: a re-armed attempt now succeeds.
    runtime.restart_results = []
    watchdog.check_now(retry_exhausted=True)
    assert not runtime.dead
    assert runtime.restart_calls == 3
    assert watchdog.restarts_performed == 1
    # A later death gets a fresh budget of its own.
    runtime.dead = True
    runtime.restart_results = [False]
    sim.run_until(11.5)
    assert runtime.restart_calls == 4
    assert watchdog.mis == 2


def test_plain_check_now_does_not_rearm_exhausted_budget():
    sim = Simulator()
    runtime = FakeRuntime()
    watchdog = Watchdog(sim, runtime, poll_seconds=1.0,
                        max_restart_attempts=1)
    runtime.dead = True
    runtime.restart_results = [False] * 10
    watchdog.check_now()
    watchdog.check_now()
    watchdog.check_now()
    assert runtime.restart_calls == 1
