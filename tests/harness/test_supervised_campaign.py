"""Tier-1 tests: the supervised campaign end to end.

The acceptance property from the issue: a campaign with an injected
worker crash and one hung shard completes with ``degraded=True``,
quarantines only the offending slots, lists them in its run manifest —
and the merged metrics of the surviving slots are identical to a serial
run over the same slots.
"""

import time
from functools import partial

from repro.harness.campaign import (
    ParallelCampaign,
    merge_outcomes,
    plan_shards,
    run_shard,
)
from repro.harness.config import ExperimentConfig
from repro.harness.telemetry import RunManifest, read_telemetry


def tiny_config(iterations=1, fault_sample=8):
    config = ExperimentConfig.smoke()
    config.fault_sample = fault_sample
    config.rules = type(config.rules)(
        warmup_seconds=3.0, rampup_seconds=1.0, rampdown_seconds=1.0,
        iterations=iterations, slot_seconds=4.0, slot_gap_seconds=1.0,
        baseline_seconds=12.0,
    )
    return config


def _sabotaged_run_shard(config, iteration, cache_dir, plan, marker_dir,
                         shard):
    """Worker entry point with scripted failures per shard index.

    ``plan`` maps a shard index to "crash" / "hang" / "crash_once";
    anything else runs the real shard.  Top-level so it pickles into
    the worker pool.
    """
    behaviour = plan.get(shard.index)
    if behaviour == "crash_once" and marker_dir is not None:
        from pathlib import Path

        marker = Path(marker_dir) / f"tried-{shard.index}"
        if marker.exists():
            behaviour = None
        else:
            marker.write_text("tried")
            behaviour = "crash"
    if behaviour == "crash":
        raise RuntimeError(f"sabotaged shard {shard.index}")
    if behaviour == "hang":
        time.sleep(60.0)
    return run_shard(config, iteration, shard,
                     mutant_cache_dir=cache_dir)


class SabotagedCampaign(ParallelCampaign):
    """A campaign whose worker task misbehaves on scripted shards."""

    def __init__(self, *args, plan=None, marker_dir=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.plan = dict(plan or {})
        self.marker_dir = marker_dir

    def _shard_task(self, iteration):
        return partial(
            _sabotaged_run_shard, self.config, iteration,
            self.cache_dir, self.plan,
            str(self.marker_dir) if self.marker_dir else None,
        )


def iterations_equal(a, b):
    assert a.metrics == b.metrics
    assert (a.mis, a.kns, a.kcp) == (b.mis, b.kns, b.kcp)
    assert a.faults_injected == b.faults_injected
    assert a.runtime_stats == b.runtime_stats
    assert a.incidents == b.incidents


# ----------------------------------------------------------------------
# The acceptance scenario
# ----------------------------------------------------------------------
def test_crash_and_hang_complete_degraded_with_exact_quarantine(tmp_path):
    config = tiny_config()
    campaign = SabotagedCampaign(
        config, workers=2, slots_per_shard=2,
        plan={1: "crash", 2: "hang"},
        shard_timeout=3.0, max_retries=0,
        manifest_path=tmp_path / "run.manifest.json",
        telemetry_path=tmp_path / "telemetry.jsonl",
    )
    result = campaign.run(
        include_baseline=False, include_profile_mode=False
    )
    # The campaign completed (no exception) but is flagged degraded,
    # with exactly the sabotaged shards quarantined.
    assert result.degraded
    assert sorted(entry["shard_index"] for entry in result.quarantine) \
        == [1, 2]
    reasons = {
        entry["shard_index"]: entry["failures"][-1]
        for entry in result.quarantine
    }
    assert "crash" in reasons[1]
    assert "hang" in reasons[2]

    # The manifest lists the quarantined slots with their fault ids.
    manifest = RunManifest.load(tmp_path / "run.manifest.json")
    assert manifest.supervision["degraded"]
    quarantined = manifest.supervision["quarantined"]
    assert sorted(entry["shard_index"] for entry in quarantined) == [1, 2]
    faultload = campaign.prepared_faultload()
    shards = plan_shards(faultload, 2)
    for entry in quarantined:
        expected = [
            location.fault_id
            for location in shards[entry["shard_index"]].locations
        ]
        assert entry["fault_ids"] == expected

    # Surviving-slot metrics are identical to a serial run over the
    # same slots: quarantine removes slots, it never perturbs the rest.
    survivors = [
        shard for shard in shards if shard.index not in (1, 2)
    ]
    outcomes = [run_shard(config, 1, shard) for shard in survivors]
    serial = merge_outcomes(outcomes, 1, config.client.connections)
    iterations_equal(result.iterations[0], serial)

    # Telemetry recorded the whole story.
    kinds = [event["event"]
             for event in read_telemetry(tmp_path / "telemetry.jsonl")]
    assert kinds.count("shard_quarantine") == 2
    assert "pool_rebuild" in kinds
    assert kinds[-1] == "campaign_end"


def test_transient_crash_retries_and_stays_bit_identical(tmp_path):
    config = tiny_config()
    clean = ParallelCampaign(config, workers=1, slots_per_shard=2)
    clean_result = clean.run(
        include_baseline=False, include_profile_mode=False
    )
    supervised = SabotagedCampaign(
        tiny_config(), workers=2, slots_per_shard=2,
        plan={0: "crash_once"}, marker_dir=tmp_path,
        manifest_path=tmp_path / "run.manifest.json",
    )
    result = supervised.run(
        include_baseline=False, include_profile_mode=False
    )
    # One retry, zero quarantine, and the retried run is bit-identical
    # to an unsupervised serial campaign.
    assert not result.degraded
    assert supervised.manifest.supervision["retries"] >= 1
    iterations_equal(clean_result.iterations[0], result.iterations[0])
    assert (supervised.manifest.metrics_digest
            == clean.manifest.metrics_digest)


def test_manifest_digest_identical_across_worker_counts(tmp_path):
    """The determinism-gate property, in miniature."""
    serial = ParallelCampaign(
        tiny_config(), workers=1,
        manifest_path=tmp_path / "w1.manifest.json",
    )
    serial.run(include_baseline=False, include_profile_mode=False)
    parallel = ParallelCampaign(
        tiny_config(), workers=2,
        manifest_path=tmp_path / "w2.manifest.json",
    )
    parallel.run(include_baseline=False, include_profile_mode=False)
    w1 = RunManifest.load(tmp_path / "w1.manifest.json")
    w2 = RunManifest.load(tmp_path / "w2.manifest.json")
    assert w1.metrics_digest == w2.metrics_digest
    assert w1.campaign_key == w2.campaign_key
    assert w1.faultload_digest == w2.faultload_digest
    assert w1.build_fingerprint == w2.build_fingerprint
    # Execution shape is recorded but never part of the digest.
    assert (w1.workers, w2.workers) == (1, 2)


def test_manifest_and_telemetry_default_to_journal_siblings(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    campaign = ParallelCampaign(
        tiny_config(), workers=1, journal_path=journal
    )
    campaign.run(include_baseline=False, include_profile_mode=False)
    assert (tmp_path / "campaign.manifest.json").exists()
    assert (tmp_path / "campaign.telemetry.jsonl").exists()
    manifest = RunManifest.load(tmp_path / "campaign.manifest.json")
    assert manifest.metrics_digest == campaign.manifest.metrics_digest
    assert any(key.startswith("iteration-")
               for key in manifest.phase_timings)


def test_quarantined_shards_are_not_journalled_and_resume_retries(
        tmp_path):
    """A quarantined shard's slots stay missing from the journal, so a
    resumed run (with the fault fixed) completes them and converges on
    the clean result."""
    config = tiny_config()
    journal = tmp_path / "campaign.jsonl"
    degraded = SabotagedCampaign(
        config, workers=2, slots_per_shard=2, plan={1: "crash"},
        max_retries=0, journal_path=journal,
    )
    first = degraded.run(
        include_baseline=False, include_profile_mode=False
    )
    assert first.degraded
    # Resume with a healthy task: only the quarantined shard reruns.
    healed = SabotagedCampaign(
        tiny_config(), workers=2, slots_per_shard=2, plan={},
        journal_path=journal, resume=True,
    )
    second = healed.run(
        include_baseline=False, include_profile_mode=False
    )
    assert not second.degraded
    clean = ParallelCampaign(
        tiny_config(), workers=1, slots_per_shard=2
    ).run(include_baseline=False, include_profile_mode=False)
    iterations_equal(second.iterations[0], clean.iterations[0])
