"""Snapshot/restore equivalence suite (DESIGN.md §12, tier-1).

The contract under test: a restored epoch is indistinguishable from a
booted one.  Same simulated clock, same RNG streams, same workload
trajectory — so a campaign that restores between slots must produce a
``metrics_digest`` byte-identical to one that boots between slots.
Everything here parametrizes that claim: machine-level replay, digest
parity across builds / worker counts / adaptive mode, contamination
reboots served from the cache, and the restore-verify fallback when an
image goes stale.
"""

import dataclasses

import pytest

from repro.faults.faultload import Faultload
from repro.harness.campaign import ParallelCampaign, campaign_key
from repro.harness.config import ExperimentConfig
from repro.harness.experiment import WebServerExperiment
from repro.harness.machine import ServerMachine
from repro.harness.results import BenchmarkResult
from repro.harness.snapshot import (
    MachineSnapshot,
    SnapshotCache,
    snapshot_cache,
    snapshot_key,
)
from repro.harness.telemetry import metrics_digest
from repro.ossim.integrity import IntegrityAuditor

LEAK_FAULT = "repro.ossim.modules.ntdll50:RtlFreeHeap:MIA:5"


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts and ends with an empty process-wide cache."""
    snapshot_cache().clear()
    yield
    snapshot_cache().clear()


def smoke_config(**overrides):
    return ExperimentConfig.smoke(**overrides)


def tiny_config(**overrides):
    """Campaign-sized smoke config (mirrors test_campaign.tiny_config)."""
    config = smoke_config(fault_sample=8, **overrides)
    config.rules = type(config.rules)(
        warmup_seconds=3.0, rampup_seconds=1.0, rampdown_seconds=1.0,
        iterations=1, slot_seconds=4.0, slot_gap_seconds=1.0,
        baseline_seconds=12.0,
    )
    return config


def single_run_digest(config, faultload=None, iteration=1):
    """Digest of one injection iteration under ``config``."""
    snapshot_cache().clear()
    experiment = WebServerExperiment(config)
    prepared = experiment.prepared_faultload(faultload)
    run = experiment.run_injection(prepared, iteration=iteration)
    result = BenchmarkResult(
        server_name=config.server_name,
        os_codename=config.os_codename,
        os_display=experiment.build.display_name,
    )
    result.add_iteration(run)
    return metrics_digest(result), run


def seeded_leak_faultload(config, benign_slots=2):
    """The leaking free plus benign slots (test_integrity_protocol)."""
    experiment = WebServerExperiment(config)
    raw = experiment.raw_faultload()
    by_id = {location.fault_id: location for location in raw}
    benign = [
        location for location in raw
        if "RtlFreeHeap" not in location.fault_id
        and location.fault_id.split(":")[2] == "MVI"
    ][:benign_slots]
    assert len(benign) == benign_slots
    return Faultload(
        config.os_codename,
        tuple([by_id[LEAK_FAULT]] + benign),
        name="seeded-leak",
        prepared=True,
    )


# ----------------------------------------------------------------------
# Machine-level: a restore IS the booted machine
# ----------------------------------------------------------------------
def test_restored_machine_replays_booted_machine_exactly():
    config = smoke_config()
    machine = ServerMachine(config, iteration=1)
    assert machine.boot()
    machine.client.start()
    machine.run_for(
        config.rules.warmup_seconds + config.rules.rampup_seconds
    )
    auditor = IntegrityAuditor(machine.kernel)
    auditor.snapshot(machine.runtime.ctx)
    snapshot = MachineSnapshot.capture(
        snapshot_key(config, 1), machine, auditor
    )
    snapshot.reference = auditor.audit(
        machine.runtime.ctx, internal=True
    ).to_dict()

    restored, restored_auditor = snapshot.restore()
    assert restored is not machine
    # Shared-by-reference objects (see module docstring in snapshot.py):
    # the config is immutable, the build must stay live for the injector.
    assert restored.config is machine.config
    assert restored.build is machine.build
    # Restore-verify: the restored auditor reproduces the capture-time
    # report byte-for-byte.
    verify = restored_auditor.audit(restored.runtime.ctx, internal=True)
    assert verify.to_dict() == snapshot.reference

    # Both run forward in lockstep: identical clocks and workload.
    for seconds in (3.0, 7.0):
        machine.run_for(seconds)
        restored.run_for(seconds)
        assert restored.sim.now == machine.sim.now
        assert restored.client.total_ops() == machine.client.total_ops()
        assert (restored.client.total_errors()
                == machine.client.total_errors())

    # A later restore is untouched by the first copy's progress.
    second, _ = snapshot.restore()
    assert second.sim.now < restored.sim.now
    second.run_for(10.0)
    assert second.sim.now == restored.sim.now
    assert second.client.total_ops() == restored.client.total_ops()
    assert snapshot.restores == 2


def test_dirty_snapshot_falls_back_to_boot():
    """A reference mismatch discards the image instead of using it."""
    config = smoke_config()
    experiment = WebServerExperiment(config)
    key = snapshot_key(config, 1)
    experiment._bring_up(1, None)
    snapshot = snapshot_cache().get(key)
    assert snapshot is not None
    snapshot.reference = dict(snapshot.reference, sim_time=-1.0)
    assert experiment._restore_epoch(1, None) is None
    assert snapshot_cache().get(key) is None
    # The dispatcher then boots: the epoch is usable, just not restored.
    epoch = experiment._bring_up(1, None)
    assert epoch.restored is False


# ----------------------------------------------------------------------
# Digest parity: restored epochs == booted epochs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("os_codename", ["nt50", "nt51"])
def test_pristine_digest_parity_restored_vs_booted(os_codename):
    base = smoke_config(pristine_slots=True, os_codename=os_codename)
    snap_digest, snap_run = single_run_digest(
        dataclasses.replace(base, snapshot_epochs=True)
    )
    boot_digest, boot_run = single_run_digest(
        dataclasses.replace(base, snapshot_epochs=False)
    )
    assert snap_digest == boot_digest
    # The snapshot run really did restore: one boot, the rest restores.
    assert snap_run.epochs_booted == 1
    assert snap_run.epochs_restored == snap_run.pristine_restarts > 0
    assert boot_run.epochs_restored == 0
    assert boot_run.epochs_booted == boot_run.pristine_restarts + 1


def test_nonpristine_digest_parity_restored_vs_booted():
    base = smoke_config()
    snap_digest, _ = single_run_digest(
        dataclasses.replace(base, snapshot_epochs=True)
    )
    boot_digest, _ = single_run_digest(
        dataclasses.replace(base, snapshot_epochs=False)
    )
    assert snap_digest == boot_digest


def test_pristine_digest_stable_across_runs_and_warm_cache():
    config = smoke_config(pristine_slots=True)
    first_digest, first_run = single_run_digest(config)
    # Second run WITHOUT clearing the cache: every epoch including the
    # first is served from the warm snapshot — digest must not move.
    experiment = WebServerExperiment(config)
    prepared = experiment.prepared_faultload()
    second_run = experiment.run_injection(prepared, iteration=1)
    result = BenchmarkResult(
        server_name=config.server_name,
        os_codename=config.os_codename,
        os_display=experiment.build.display_name,
    )
    result.add_iteration(second_run)
    assert metrics_digest(result) == first_digest
    assert second_run.epochs_booted == 0
    assert second_run.epochs_restored == first_run.epochs_restored + 1


def test_contamination_reboot_served_by_restore():
    config = smoke_config()
    faultload = seeded_leak_faultload(config)
    snap_digest, snap_run = single_run_digest(
        dataclasses.replace(config, snapshot_epochs=True), faultload
    )
    boot_digest, boot_run = single_run_digest(
        dataclasses.replace(config, snapshot_epochs=False), faultload
    )
    for run in (snap_run, boot_run):
        assert run.contaminated_slots[0]["fault_id"] == LEAK_FAULT
        assert run.reboots == [{"after_slot": 0, "verified": True}]
    # The verified reboot was a restore, and it changed nothing the
    # metrics can see.
    assert snap_run.epochs_restored == 1
    assert snap_run.epochs_booted == 1
    assert boot_run.epochs_booted == 2
    assert snap_digest == boot_digest


def test_campaign_parity_workers_and_snapshots():
    config = tiny_config(pristine_slots=True)
    serial = ParallelCampaign(config, workers=1).run(
        include_baseline=False, include_profile_mode=False
    )
    snapshot_cache().clear()
    parallel = ParallelCampaign(config, workers=2).run(
        include_baseline=False, include_profile_mode=False
    )
    snapshot_cache().clear()
    booted = ParallelCampaign(
        dataclasses.replace(config, snapshot_epochs=False), workers=1
    ).run(include_baseline=False, include_profile_mode=False)
    digests = {
        metrics_digest(result) for result in (serial, parallel, booted)
    }
    assert len(digests) == 1


def test_adaptive_slots_digest_parity():
    base = smoke_config(adaptive_slots=True)
    snap_digest, _ = single_run_digest(
        dataclasses.replace(base, snapshot_epochs=True)
    )
    boot_digest, _ = single_run_digest(
        dataclasses.replace(base, snapshot_epochs=False)
    )
    assert snap_digest == boot_digest


# ----------------------------------------------------------------------
# Identity: snapshots fold into the campaign key
# ----------------------------------------------------------------------
def test_snapshot_key_separates_configs_and_iterations():
    config = smoke_config()
    assert snapshot_key(config, 1) != snapshot_key(config, 2)
    toggled = dataclasses.replace(config, pristine_slots=True)
    assert snapshot_key(config, 1) != snapshot_key(toggled, 1)


def test_campaign_key_covers_snapshot_fields():
    config = tiny_config()
    faultload = WebServerExperiment(config).prepared_faultload()
    baseline = campaign_key(config, faultload)
    for field, value in (
        ("snapshot_epochs", False),
        ("pristine_slots", True),
    ):
        changed = dataclasses.replace(config, **{field: value})
        assert campaign_key(changed, faultload) != baseline


# ----------------------------------------------------------------------
# Cache mechanics
# ----------------------------------------------------------------------
def _fake_snapshot(key):
    return MachineSnapshot(key, b"", shared=())


def test_snapshot_cache_lru_eviction_and_counters():
    cache = SnapshotCache(max_entries=2)
    cache.put(_fake_snapshot("a"))
    cache.put(_fake_snapshot("b"))
    assert cache.get("a").key == "a"  # refreshes "a"
    cache.put(_fake_snapshot("c"))  # evicts "b", the LRU entry
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.get("c") is not None
    assert (cache.hits, cache.misses) == (3, 1)
    cache.discard("a")
    assert cache.get("a") is None
    cache.resize(1)
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0
    assert (cache.hits, cache.misses) == (0, 0)
