"""Tier-1 tests for the socket campaign fabric.

Three layers, in rising order of integration:

* the frame protocol (roundtrip, clean EOF vs torn stream, size guard,
  address parsing);
* the coordinator's supervision protocol, driven directly with toy
  tasks and scripted workers — real :class:`FabricWorker` threads for
  the happy/skew paths, raw sockets for death and hang (a raw socket is
  the only honest way to act out a worker that takes a shard and
  vanishes);
* the full campaign: loopback fabric runs must be byte-digest-identical
  to pool and serial runs — including with adaptive slots on and with a
  worker chaos-killed mid-campaign — which is the property that makes
  the fabric a backend rather than a different experiment.
"""

import json
import socket
import struct
import threading
import time
from dataclasses import dataclass

import pytest

from repro.harness.campaign import (
    JOURNAL_VERSION,
    CampaignShard,
    ParallelCampaign,
)
from repro.harness.fabric.backend import FabricExecutorBackend
from repro.harness.fabric.coordinator import FabricCoordinator
from repro.harness.fabric.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.harness.fabric.worker import FabricWorker
from repro.harness.supervisor import ShardSupervisor
from tests.harness.test_supervised_campaign import tiny_config


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    left, right = socket.socketpair()
    try:
        message = {"type": "result", "ticket": 3,
                   "outcome": {"mis": 1, "nested": [1, 2, {"a": "b"}]}}
        send_frame(left, message)
        assert recv_frame(right) == message
    finally:
        left.close()
        right.close()


def test_frame_bytes_are_sorted_and_deterministic():
    left, right = socket.socketpair()
    try:
        send_frame(left, {"b": 1, "a": 2})
        send_frame(left, {"a": 2, "b": 1})
        left.close()
        raw = b""
        while True:
            chunk = right.recv(4096)
            if not chunk:
                break
            raw += chunk
        half = len(raw) // 2
        assert raw[:half] == raw[half:]  # same content, same bytes
    finally:
        right.close()


def test_recv_frame_clean_eof_is_none():
    left, right = socket.socketpair()
    left.close()
    try:
        assert recv_frame(right) is None
    finally:
        right.close()


def test_recv_frame_torn_mid_frame_raises():
    left, right = socket.socketpair()
    try:
        import struct

        left.sendall(struct.pack(">I", 100) + b'{"type"')
        left.close()
        with pytest.raises(FrameError):
            recv_frame(right)
    finally:
        right.close()


def test_recv_frame_rejects_oversized_length():
    left, right = socket.socketpair()
    try:
        import struct

        left.sendall(struct.pack(">I", 2**31))
        with pytest.raises(FrameError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_send_frame_rejects_oversized_payload(monkeypatch):
    import repro.harness.fabric.protocol as protocol

    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
    left, right = socket.socketpair()
    try:
        with pytest.raises(FrameError):
            protocol.send_frame(left, {"blob": "x" * 200})
    finally:
        left.close()
        right.close()


def test_parse_address():
    assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert parse_address("host.example:1") == ("host.example", 1)
    for bad in ("nohost", ":123", "host:", "host:abc", "host:70000"):
        with pytest.raises(ValueError):
            parse_address(bad)


# ----------------------------------------------------------------------
# Coordinator protocol, driven directly
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FakeLocation:
    fault_id: str


def _shard(index):
    return CampaignShard(
        index=index, first_slot=index * 2,
        locations=(FakeLocation(f"f#{index}"),),
    )


def _ok_task(shard):
    return {"shard": shard.index}


def _slow_task(shard):
    time.sleep(0.2)
    return {"shard": shard.index}


def _drain_until(source, predicate, deadline=15.0):
    """Collect events until ``predicate(events)`` or the deadline."""
    events = []
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        events.extend(source.drain(0.05))
        if predicate(events):
            return events
    raise AssertionError(f"timed out waiting; got {events}")


def _worker_thread(coordinator, **kwargs):
    host, port = coordinator.address
    worker = FabricWorker(host, port, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def test_coordinator_completes_work_and_counts_steals():
    coordinator = FabricCoordinator(journal_version=JOURNAL_VERSION)
    try:
        for index in range(3):
            coordinator.submit(index, _shard(index), _ok_task)
        _worker_thread(coordinator, name="w0",
                       journal_version=JOURNAL_VERSION)
        events = _drain_until(
            coordinator,
            lambda es: sum(e.kind == "done" for e in es) == 3,
        )
        done = sorted(e.ticket for e in events if e.kind == "done")
        assert done == [0, 1, 2]
        for event in events:
            if event.kind == "done":
                assert event.outcome == {"shard": event.ticket}
        stats = coordinator.stats()
        assert stats["steals"] == 3
        assert stats["results"] == 3
        assert stats["worker_deaths"] == 0
        assert stats["roster"][0]["name"] == "w0"
        assert stats["roster"][0]["shards_done"] == 3
        kinds = {e.event for e in events if e.kind == "info"}
        assert "fabric_worker_register" in kinds
        assert "fabric_steal" in kinds
    finally:
        coordinator.stop()


def test_coordinator_rejects_version_skewed_fragments():
    """A worker built against another journal version must have its
    fragments discarded and the shard charged — never merged."""
    coordinator = FabricCoordinator(journal_version=JOURNAL_VERSION)
    try:
        coordinator.submit(0, _shard(0), _ok_task)
        _worker_thread(coordinator, name="skewed", journal_version=999)
        events = _drain_until(
            coordinator,
            lambda es: any(e.kind == "failed" for e in es),
        )
        failed = [e for e in events if e.kind == "failed"]
        assert "version skew" in failed[0].reason
        assert not any(e.kind == "done" for e in events)
        assert coordinator.stats()["version_skew"] >= 1
        kinds = {e.event for e in events if e.kind == "info"}
        assert "fabric_version_skew" in kinds
    finally:
        coordinator.stop()


def _raw_register_and_steal(coordinator, name="raw"):
    """Minimal hand-rolled worker: register, steal, return the live
    socket and the assignment message."""
    conn = socket.create_connection(coordinator.address)
    send_frame(conn, {
        "type": "register", "name": name, "pid": 1, "host": "test",
        "protocol": PROTOCOL_VERSION,
        "journal_version": JOURNAL_VERSION,
    })
    ack = recv_frame(conn)
    assert ack["type"] == "registered"
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        send_frame(conn, {"type": "steal"})
        message = recv_frame(conn)
        if message["type"] == "assign":
            return conn, message
        time.sleep(0.02)
    raise AssertionError("never got an assignment")


def test_coordinator_charges_shard_of_dead_worker():
    coordinator = FabricCoordinator(journal_version=JOURNAL_VERSION)
    try:
        coordinator.submit(5, _shard(5), _ok_task)
        conn, assignment = _raw_register_and_steal(coordinator)
        assert assignment["ticket"] == 5
        conn.close()  # die mid-assignment, no goodbye
        events = _drain_until(
            coordinator,
            lambda es: any(e.kind == "failed" for e in es),
        )
        failed = [e for e in events if e.kind == "failed"]
        assert failed[0].ticket == 5
        assert "died" in failed[0].reason
        stats = coordinator.stats()
        assert stats["worker_deaths"] == 1
        assert stats["requeues"] == 1
        assert any(e.event == "fabric_worker_dead"
                   for e in events if e.kind == "info")
    finally:
        coordinator.stop()


def test_coordinator_charges_hung_shard_despite_heartbeats():
    """Heartbeats prove liveness, not progress: a shard past its
    wall-clock deadline is charged even while its worker heartbeats."""
    coordinator = FabricCoordinator(
        journal_version=JOURNAL_VERSION, shard_timeout=0.4)
    try:
        coordinator.submit(2, _shard(2), _ok_task)
        conn, assignment = _raw_register_and_steal(coordinator)
        assert assignment["ticket"] == 2
        stop = threading.Event()

        def heartbeat():
            while not stop.wait(0.1):
                try:
                    send_frame(conn, {"type": "heartbeat"})
                except OSError:
                    return

        thread = threading.Thread(target=heartbeat, daemon=True)
        thread.start()
        try:
            events = _drain_until(
                coordinator,
                lambda es: any(e.kind == "failed" for e in es),
            )
        finally:
            stop.set()
            thread.join()
        failed = [e for e in events if e.kind == "failed"]
        assert failed[0].ticket == 2
        assert "hang" in failed[0].reason
        assert coordinator.stats()["heartbeats"] >= 1
    finally:
        coordinator.stop()
        conn.close()


def test_coordinator_reaps_worker_with_stale_heartbeat():
    """A worker that stops heartbeating mid-shard is dead even if its
    TCP connection lingers: the shard must come back."""
    coordinator = FabricCoordinator(
        journal_version=JOURNAL_VERSION, shard_timeout=60.0,
        heartbeat_seconds=0.1, heartbeat_grace=0.5)
    try:
        coordinator.submit(1, _shard(1), _ok_task)
        conn, assignment = _raw_register_and_steal(coordinator)
        assert assignment["ticket"] == 1
        # ...and now send nothing at all.
        events = _drain_until(
            coordinator,
            lambda es: any(e.kind == "failed" for e in es),
        )
        failed = [e for e in events if e.kind == "failed"]
        assert failed[0].ticket == 1
        assert "heartbeat" in failed[0].reason
    finally:
        coordinator.stop()
        conn.close()


# ----------------------------------------------------------------------
# Supervisor over the fabric backend
# ----------------------------------------------------------------------
def _fabric_supervisor(loopback, **backend_kwargs):
    return ShardSupervisor(
        workers=loopback,
        poll_seconds=0.02,
        backend_factory=lambda: FabricExecutorBackend(
            loopback_workers=loopback,
            journal_version=JOURNAL_VERSION,
            **backend_kwargs,
        ),
    )


def test_supervisor_completes_over_loopback_fabric():
    shards = [_shard(i) for i in range(6)]
    with _fabric_supervisor(2) as supervisor:
        report = supervisor.run(shards, _ok_task)
        stats = supervisor.backend_stats()
    assert sorted(report.outcomes) == list(range(6))
    assert report.quarantined == []
    assert stats["backend"] == "fabric"
    assert stats["loopback_workers"] == 2
    assert stats["results"] == 6


def test_supervisor_survives_chaos_killed_loopback_worker():
    shards = [_shard(i) for i in range(6)]
    with _fabric_supervisor(2, chaos_kill_after=2) as supervisor:
        report = supervisor.run(shards, _slow_task)
        stats = supervisor.backend_stats()
    assert sorted(report.outcomes) == list(range(6))
    assert report.quarantined == []
    assert report.retries >= 1
    assert stats["worker_deaths"] >= 1
    assert stats["requeues"] >= 1


def test_supervisor_serial_fallback_when_fabric_starves():
    """A fabric with no workers at all must not wedge the campaign: the
    starvation timeout hands the shards back, the supervisor burns its
    rebuild budget, and the work finishes serially in-process."""
    shards = [_shard(i) for i in range(3)]
    supervisor = ShardSupervisor(
        workers=2,
        poll_seconds=0.02,
        max_pool_rebuilds=0,
        backend_factory=lambda: FabricExecutorBackend(
            listen=("127.0.0.1", 0),
            journal_version=JOURNAL_VERSION,
            worker_grace=0.3,
        ),
    )
    with supervisor:
        report = supervisor.run(shards, _ok_task)
    assert sorted(report.outcomes) == list(range(3))
    assert report.serial_fallback
    assert report.pool_rebuilds >= 1
    assert report.retries == 0  # starvation charges nobody


def test_external_worker_via_listen_address():
    """The `campaign-worker host:port` shape: backend listens, a worker
    we run ourselves supplies all the capacity."""
    backend = FabricExecutorBackend(
        listen=("127.0.0.1", 0), journal_version=JOURNAL_VERSION)
    try:
        host, port = backend.address
        worker = FabricWorker(host, port, name="external-0",
                              journal_version=JOURNAL_VERSION)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        for index in range(3):
            backend.submit_shard(index, _shard(index), _ok_task)
        events = _drain_until(
            backend, lambda es: sum(e.kind == "done" for e in es) == 3)
        assert sorted(e.ticket for e in events
                      if e.kind == "done") == [0, 1, 2]
        roster = backend.stats()["roster"]
        assert [w["name"] for w in roster] == ["external-0"]
    finally:
        backend.shutdown()


# ----------------------------------------------------------------------
# Campaign digest parity (the acceptance property)
# ----------------------------------------------------------------------
def _run_campaign(tmp_path, label, **kwargs):
    config = kwargs.pop("config", None) or tiny_config()
    campaign = ParallelCampaign(
        config,
        journal_path=tmp_path / label / "journal.jsonl",
        **kwargs,
    )
    result = campaign.run(include_baseline=False,
                          include_profile_mode=False)
    return result, campaign.manifest


@pytest.mark.slow
@pytest.mark.parametrize("os_codename", ["nt50", "nt51"])
def test_fabric_campaign_digest_matches_pool_and_serial(tmp_path,
                                                        os_codename):
    def config():
        built = tiny_config()
        built.os_codename = os_codename
        return built

    serial, serial_manifest = _run_campaign(
        tmp_path, "serial", workers=1, config=config())
    pool, pool_manifest = _run_campaign(
        tmp_path, "pool", workers=2, config=config())
    fabric, fabric_manifest = _run_campaign(
        tmp_path, "fabric", workers=4, backend="fabric",
        config=config())
    assert (serial_manifest.metrics_digest
            == pool_manifest.metrics_digest
            == fabric_manifest.metrics_digest)
    assert not fabric.degraded
    assert fabric_manifest.fabric["backend"] == "fabric"
    assert fabric_manifest.fabric["results"] >= 1
    assert pool_manifest.fabric["backend"] == "pool"
    # The fabric block is diagnostic: everything under metrics_digest
    # must be identical, and the digest is computed from the result, so
    # equality above already proves the block stayed outside it.


@pytest.mark.slow
def test_fabric_digest_parity_with_adaptive_slots(tmp_path):
    def adaptive():
        config = tiny_config()
        config.adaptive_slots = True
        return config

    pool, pool_manifest = _run_campaign(
        tmp_path, "pool", workers=2, config=adaptive())
    fabric, fabric_manifest = _run_campaign(
        tmp_path, "fabric", workers=2, backend="fabric",
        config=adaptive())
    assert pool_manifest.metrics_digest == fabric_manifest.metrics_digest
    assert pool_manifest.activation["adaptive"]


@pytest.mark.slow
def test_fabric_digest_parity_with_chaos_killed_worker(tmp_path,
                                                       monkeypatch):
    # Small shards so the campaign outlives the murdered worker: 8
    # slots / 2 per shard = 4 shards for 2 workers, and loopback
    # worker 0 SIGKILLs itself on its first assignment.
    pool, pool_manifest = _run_campaign(
        tmp_path, "pool", workers=2, slots_per_shard=2)
    monkeypatch.setenv("REPRO_FABRIC_CHAOS_KILL_AFTER", "1")
    fabric, fabric_manifest = _run_campaign(
        tmp_path, "fabric", workers=2, backend="fabric",
        slots_per_shard=2)
    assert pool_manifest.metrics_digest == fabric_manifest.metrics_digest
    assert not fabric.degraded
    assert fabric_manifest.fabric["worker_deaths"] >= 1
    assert fabric_manifest.fabric["requeues"] >= 1


@pytest.mark.slow
def test_fabric_telemetry_and_manifest_surface(tmp_path):
    _result, manifest = _run_campaign(
        tmp_path, "fabric", workers=2, backend="fabric")
    telemetry_path = tmp_path / "fabric" / "journal.telemetry.jsonl"
    events = [json.loads(line)
              for line in telemetry_path.read_text().splitlines()]
    names = {event["event"] for event in events}
    assert "fabric_worker_register" in names
    assert "fabric_steal" in names
    assert "fabric_summary" in names
    summary = [e for e in events if e["event"] == "fabric_summary"][-1]
    assert summary["backend"] == "fabric"
    roster = {worker["name"] for worker in manifest.fabric["roster"]}
    assert roster == {"loopback-0", "loopback-1"}
    assert manifest.manifest_version >= 5


# ----------------------------------------------------------------------
# Worker reconnect
# ----------------------------------------------------------------------
def test_worker_reconnect_backoff_is_bounded_and_deterministic(
        monkeypatch):
    """An unreachable coordinator costs exactly max_reconnects redials,
    each preceded by the policy's deterministic backoff delay."""
    import repro.harness.fabric.worker as worker_module
    from repro.harness.backoff import BackoffPolicy

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # nothing listens here now

    delays = []
    monkeypatch.setattr(worker_module, "_sleep", delays.append)
    policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=1.0,
                           jitter=0.5, seed="w0")
    worker = FabricWorker(
        "127.0.0.1", port, name="w0", max_reconnects=3,
        backoff=policy, journal_version=JOURNAL_VERSION,
    )
    assert worker.run() == 0
    assert worker.reconnects == 3
    assert delays == [policy.delay(1), policy.delay(2), policy.delay(3)]


def test_worker_default_dies_on_first_loss(monkeypatch):
    import repro.harness.fabric.worker as worker_module

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    delays = []
    monkeypatch.setattr(worker_module, "_sleep", delays.append)
    worker = FabricWorker("127.0.0.1", port,
                          journal_version=JOURNAL_VERSION)
    assert worker.run() == 0
    assert worker.reconnects == 0
    assert delays == []


def test_worker_redials_after_drop_and_reregisters(monkeypatch):
    """A dropped connection redials and re-registers with the attempt
    count; a clean shutdown never redials."""
    import repro.harness.fabric.worker as worker_module

    monkeypatch.setattr(worker_module, "_sleep", lambda seconds: None)
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(2)
    registers = []

    def scripted_coordinator():
        # session 1: accept, ack, then drop mid-conversation
        conn, _ = listener.accept()
        registers.append(recv_frame(conn))
        send_frame(conn, {"type": "registered",
                          "heartbeat_seconds": 0.5})
        recv_frame(conn)  # the worker's first steal
        conn.close()      # no shutdown, no goodbye — a real drop
        # session 2: the redial — ack, then dismiss cleanly
        conn, _ = listener.accept()
        registers.append(recv_frame(conn))
        send_frame(conn, {"type": "registered",
                          "heartbeat_seconds": 0.5})
        recv_frame(conn)  # steal
        send_frame(conn, {"type": "shutdown"})
        recv_frame(conn)  # goodbye
        conn.close()

    thread = threading.Thread(target=scripted_coordinator, daemon=True)
    thread.start()
    host, port = listener.getsockname()
    worker = FabricWorker(host, port, name="redial", max_reconnects=5,
                          journal_version=JOURNAL_VERSION)
    try:
        assert worker.run() == 0
        thread.join(5)
        assert worker.reconnects == 1  # shutdown ended it, not budget
        assert registers[0]["reconnects"] == 0
        assert registers[1]["reconnects"] == 1
    finally:
        listener.close()


def test_coordinator_emits_worker_reconnected_event():
    coordinator = FabricCoordinator(journal_version=JOURNAL_VERSION)
    conn = None
    try:
        conn = socket.create_connection(coordinator.address)
        send_frame(conn, {
            "type": "register", "name": "phoenix", "pid": 1,
            "host": "test", "protocol": PROTOCOL_VERSION,
            "journal_version": JOURNAL_VERSION, "reconnects": 2,
        })
        assert recv_frame(conn)["type"] == "registered"
        events = _drain_until(
            coordinator,
            lambda es: any(e.kind == "info"
                           and e.event == "worker_reconnected"
                           for e in es),
        )
        event = next(e for e in events
                     if e.event == "worker_reconnected")
        assert event.fields["worker"] == "phoenix"
        assert event.fields["reconnects"] == 2
    finally:
        if conn is not None:
            conn.close()
        coordinator.stop()


# ----------------------------------------------------------------------
# Protocol hardening: corrupt frames are errors, not crashes
# ----------------------------------------------------------------------
def test_recv_frame_rejects_non_object_payload():
    left, right = socket.socketpair()
    try:
        send_frame(left, [1, 2, 3])  # valid JSON, wrong shape
        with pytest.raises(FrameError, match="JSON object"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def _send_torn_frame(conn):
    conn.sendall(struct.pack(">I", 64) + b'{"torn')
    conn.close()


def _send_oversized_length(conn):
    conn.sendall(struct.pack(">I", 2**31))


def _send_invalid_json(conn):
    conn.sendall(struct.pack(">I", 7) + b"notjson")


def _send_non_object(conn):
    send_frame(conn, ["not", "an", "object"])


@pytest.mark.parametrize("corrupt", [
    _send_torn_frame,
    _send_oversized_length,
    _send_invalid_json,
    _send_non_object,
], ids=["torn-frame", "oversized-length", "invalid-json", "non-object"])
def test_coordinator_requeues_shard_on_protocol_error(corrupt):
    """Garbage on the wire from a worker holding a shard must become a
    clean protocol error that charges + reclaims the shard — never an
    unhandled exception in the coordinator's read loop."""
    coordinator = FabricCoordinator(journal_version=JOURNAL_VERSION)
    conn = None
    try:
        coordinator.submit(9, _shard(9), _ok_task)
        conn, assignment = _raw_register_and_steal(
            coordinator, name="vandal"
        )
        assert assignment["ticket"] == 9
        corrupt(conn)
        events = _drain_until(
            coordinator,
            lambda es: any(e.kind == "failed" for e in es),
        )
        failed = [e for e in events if e.kind == "failed"][0]
        assert failed.ticket == 9
        assert "protocol error" in failed.reason
        # the coordinator survived: resubmit the reclaimed shard and a
        # healthy worker completes it on the same coordinator
        coordinator.submit(9, _shard(9), _ok_task)
        _worker_thread(coordinator, name="healthy",
                       journal_version=JOURNAL_VERSION)
        events = _drain_until(
            coordinator,
            lambda es: any(e.kind == "done" for e in es),
        )
        assert any(e.kind == "done" and e.ticket == 9 for e in events)
    finally:
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        coordinator.stop()
