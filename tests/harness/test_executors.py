"""Tier-1 tests for the executor-backend layer.

The pool backend's failure translation (crash / pool loss / hang) is
covered end-to-end by ``test_supervisor.py`` through the supervisor; the
units here pin the pieces with contracts of their own: the hard-kill
helper's fallback when the executor lacks the internal ``_processes``
map, and the backend's event vocabulary for the simple paths.
"""

import time
from functools import partial

from repro.harness.campaign import CampaignShard
from repro.harness.executors import (
    PoolExecutorBackend,
    terminate_pool_processes,
)


class _FakeProcess:
    def __init__(self):
        self.terminated = False
        self.alive = True

    def is_alive(self):
        return self.alive

    def terminate(self):
        self.terminated = True
        self.alive = False


class _FakePoolWithProcesses:
    def __init__(self, processes):
        self._processes = {index: p for index, p in enumerate(processes)}
        self.shutdown_calls = []

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append((wait, cancel_futures))


class _FakePoolWithoutProcesses:
    """An executor with no ``_processes`` internals (e.g. a future
    stdlib, or any non-process executor)."""

    def __init__(self):
        self.shutdown_calls = []

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append((wait, cancel_futures))


def test_terminate_kills_live_processes_only():
    live, dead = _FakeProcess(), _FakeProcess()
    dead.alive = False
    pool = _FakePoolWithProcesses([live, dead])
    assert terminate_pool_processes(pool) == 1
    assert live.terminated
    assert not dead.terminated
    # The helper only kills; shutdown stays the caller's job.
    assert pool.shutdown_calls == []


def test_terminate_falls_back_to_shutdown_without_processes_map():
    pool = _FakePoolWithoutProcesses()
    assert terminate_pool_processes(pool) == 0
    assert pool.shutdown_calls == [(False, True)]


def test_terminate_survives_a_dying_process():
    class _RacyProcess(_FakeProcess):
        def terminate(self):
            raise OSError("already gone")

    pool = _FakePoolWithProcesses([_RacyProcess(), _FakeProcess()])
    # One raises, the other is still counted.
    assert terminate_pool_processes(pool) == 1


def test_terminate_on_real_pool():
    from concurrent.futures import ProcessPoolExecutor

    pool = ProcessPoolExecutor(max_workers=1)
    pool.submit(time.sleep, 0).result()  # force the worker to exist
    assert terminate_pool_processes(pool) == 1
    pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# PoolExecutorBackend event vocabulary
# ----------------------------------------------------------------------
def _shard(index):
    return CampaignShard(index=index, first_slot=index, locations=())


def _echo(value, shard):
    return (value, shard.index)


def _boom(shard):
    raise RuntimeError(f"boom {shard.index}")


def _drain_all(backend, deadline=10.0):
    events = []
    end = time.monotonic() + deadline
    while not events and time.monotonic() < end:
        events = backend.drain(0.05)
    return events


def test_pool_backend_done_event():
    backend = PoolExecutorBackend(workers=1)
    try:
        assert backend.can_accept()
        assert backend.submit_shard(7, _shard(7), partial(_echo, "x")) == []
        assert not backend.can_accept()
        events = _drain_all(backend)
        assert [e.kind for e in events] == ["done"]
        assert events[0].ticket == 7
        assert events[0].outcome == ("x", 7)
        assert events[0].seconds >= 0.0
        assert backend.can_accept()
    finally:
        backend.shutdown()


def test_pool_backend_crash_is_charged():
    backend = PoolExecutorBackend(workers=1)
    try:
        backend.submit_shard(3, _shard(3), _boom)
        events = _drain_all(backend)
        assert [e.kind for e in events] == ["failed"]
        assert events[0].ticket == 3
        assert "boom 3" in events[0].reason
        assert not events[0].probation  # crash retries on the pool
    finally:
        backend.shutdown()


def test_pool_backend_drain_without_work_is_empty():
    backend = PoolExecutorBackend(workers=2)
    try:
        assert backend.drain(0.01) == []
    finally:
        backend.shutdown()


def test_pool_backend_stats():
    backend = PoolExecutorBackend(workers=3)
    try:
        assert backend.stats() == {"backend": "pool", "workers": 3}
    finally:
        backend.shutdown()
