"""Enforcement of the FIT coding rules.

The mutable OS modules must obey the style constraints that make code
swapping safe and keep a mutant from hanging the host interpreter; these
tests are the guardrail for anyone extending the FIT.
"""

import ast
import inspect
import textwrap

import pytest

from repro.ossim.builds import ALL_BUILDS

_FIT_MODULES = sorted(
    {
        module
        for build in ALL_BUILDS.values()
        for module in build.fit_modules()
    },
    key=lambda module: module.__name__,
)


def _functions(module):
    names = list(module.__exports__) + list(module.__internal__)
    return [(name, getattr(module, name)) for name in names]


@pytest.mark.parametrize(
    "module", _FIT_MODULES, ids=lambda m: m.__name__.rsplit(".", 1)[-1]
)
class TestFitStyle:
    def test_exports_and_internals_exist_and_are_functions(self, module):
        for name, function in _functions(module):
            assert callable(function), f"{name} is not callable"
            assert function.__module__ == module.__name__

    def test_no_while_loops(self, module):
        """A mutated while-condition could hang the host interpreter."""
        for name, function in _functions(module):
            tree = ast.parse(textwrap.dedent(inspect.getsource(function)))
            for node in ast.walk(tree):
                assert not isinstance(node, (ast.While, ast.AsyncFor)), (
                    f"{module.__name__}.{name} contains a while loop"
                )

    def test_no_closures_or_nested_defs(self, module):
        for name, function in _functions(module):
            assert function.__code__.co_freevars == (), (
                f"{name} closes over variables"
            )
            tree = ast.parse(textwrap.dedent(inspect.getsource(function)))
            for node in ast.walk(tree):
                if node is tree.body[0]:
                    continue
                assert not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.Lambda)
                ), f"{name} defines a nested function or lambda"

    def test_no_decorators(self, module):
        for name, function in _functions(module):
            tree = ast.parse(textwrap.dedent(inspect.getsource(function)))
            assert tree.body[0].decorator_list == [], (
                f"{name} is decorated"
            )

    def test_ctx_is_first_parameter(self, module):
        for name, function in _functions(module):
            parameters = list(
                inspect.signature(function).parameters
            )
            assert parameters, f"{name} takes no parameters"
            first = parameters[0]
            assert first in ("ctx", "char", "part", "string_object",
                             "status", "value", "text"), (
                f"{name}: unexpected first parameter {first!r}"
            )

    def test_functions_scannable(self, module):
        """Every FIT function must parse standalone (getsource works)."""
        from repro.gswfit.astutils import FunctionImage

        for _name, function in _functions(module):
            image = FunctionImage(function)
            assert image.fdef.name == function.__name__


def test_all_builds_share_common_core_exports():
    core = {
        "RtlAllocateHeap", "RtlFreeHeap", "NtCreateFile", "NtReadFile",
        "NtClose", "RtlEnterCriticalSection", "RtlLeaveCriticalSection",
        "CloseHandle", "ReadFile", "WriteFile", "SetFilePointer",
        "GetLongPathNameW", "RtlDosPathNameToNtPathName_U",
    }
    for build in ALL_BUILDS.values():
        assert core <= set(build.export_names())


def test_link_order_later_module_wins():
    build = ALL_BUILDS["nt50"]
    # ReadFile exists only in kernel32; NtReadFile only in ntdll.
    assert build.module_of("ReadFile") == "Kernel32"
    assert build.module_of("NtReadFile") == "Ntdll"
    assert build.module_of("NtTotallyFake") is None


def test_base_costs_positive():
    for build in ALL_BUILDS.values():
        for name in build.export_names():
            assert build.base_cost(name) > 0
