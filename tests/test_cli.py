"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_knows_all_subcommands():
    parser = build_parser()
    for command in ("scan", "profile", "faultload", "run", "tables"):
        args = parser.parse_args(
            [command] if command != "run" else ["run"]
        )
        assert args.command == command


def test_scan_command_prints_counts(capsys):
    assert main(["scan", "--os", "nt50"]) == 0
    out = capsys.readouterr().out
    assert "fault locations" in out
    assert "MIA" in out


def test_scan_command_writes_faultload(tmp_path, capsys):
    output = tmp_path / "fl.json"
    assert main(["scan", "--os", "nt51", "--output", str(output)]) == 0
    from repro.faults.faultload import Faultload

    faultload = Faultload.load(output)
    assert faultload.os_codename == "nt51"
    assert len(faultload) > 300


def test_invalid_os_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["scan", "--os", "win95"])


def test_run_defaults():
    args = build_parser().parse_args(["run"])
    assert args.server == "apache"
    assert args.faults == 96
    assert args.connections == 16


def test_campaign_supervision_defaults():
    args = build_parser().parse_args(["campaign"])
    assert args.shard_timeout is None
    assert args.max_retries == 2
    assert args.manifest is None
    assert args.telemetry is None
    assert not args.no_baseline
    assert not args.no_profile


def test_campaign_command_writes_manifest(tmp_path, capsys):
    manifest_path = tmp_path / "run.manifest.json"
    code = main([
        "campaign", "--faults", "8", "--connections", "4",
        "--workers", "1", "--no-baseline", "--no-profile",
        "--manifest", str(manifest_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "metrics digest:" in out
    import json

    payload = json.loads(manifest_path.read_text())
    assert payload["workers"] == 1
    assert payload["supervision"]["degraded"] is False
    assert len(payload["metrics_digest"]) == 64
