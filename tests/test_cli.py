"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_knows_all_subcommands():
    parser = build_parser()
    for command in ("scan", "profile", "faultload", "run", "tables"):
        args = parser.parse_args(
            [command] if command != "run" else ["run"]
        )
        assert args.command == command


def test_scan_command_prints_counts(capsys):
    assert main(["scan", "--os", "nt50"]) == 0
    out = capsys.readouterr().out
    assert "fault locations" in out
    assert "MIA" in out


def test_scan_command_writes_faultload(tmp_path, capsys):
    output = tmp_path / "fl.json"
    assert main(["scan", "--os", "nt51", "--output", str(output)]) == 0
    from repro.faults.faultload import Faultload

    faultload = Faultload.load(output)
    assert faultload.os_codename == "nt51"
    assert len(faultload) > 300


def test_invalid_os_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["scan", "--os", "win95"])


def test_run_defaults():
    args = build_parser().parse_args(["run"])
    assert args.server == "apache"
    assert args.faults == 96
    assert args.connections == 16


def test_campaign_supervision_defaults():
    args = build_parser().parse_args(["campaign"])
    assert args.shard_timeout is None
    assert args.max_retries == 2
    assert args.manifest is None
    assert args.telemetry is None
    assert not args.no_baseline
    assert not args.no_profile


def test_campaign_command_writes_manifest(tmp_path, capsys):
    manifest_path = tmp_path / "run.manifest.json"
    code = main([
        "campaign", "--faults", "8", "--connections", "4",
        "--workers", "1", "--no-baseline", "--no-profile",
        "--manifest", str(manifest_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "metrics digest:" in out
    import json

    payload = json.loads(manifest_path.read_text())
    assert payload["workers"] == 1
    assert payload["supervision"]["degraded"] is False
    assert len(payload["metrics_digest"]) == 64


# ----------------------------------------------------------------------
# Campaign flag validation (up-front, one clear line, exit code 2)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("argv", "message"),
    [
        (["campaign", "--resume"], "--resume requires --journal"),
        (["campaign", "--workers", "0"], "--workers must be >= 1"),
        (["campaign", "--slots-per-shard", "0"],
         "--slots-per-shard must be >= 1"),
        (["campaign", "--shard-timeout", "-1"],
         "--shard-timeout must be positive"),
        (["campaign", "--max-retries", "-1"],
         "--max-retries must be >= 0"),
        (["campaign", "--fabric-listen", "127.0.0.1:9"],
         "--fabric-listen requires --backend fabric"),
        (["campaign", "--fabric-loopback", "2"],
         "--fabric-loopback requires --backend fabric"),
        (["campaign", "--backend", "fabric",
          "--fabric-listen", "no-port"],
         "must be host:port"),
        (["campaign", "--backend", "fabric", "--fabric-loopback", "-1"],
         "--fabric-loopback must be >= 0"),
        (["campaign", "--backend", "fabric", "--fabric-loopback", "0"],
         "needs --fabric-listen"),
    ],
)
def test_campaign_flag_validation(capsys, argv, message):
    assert main(argv) == 2
    assert message in capsys.readouterr().err


def test_campaign_backend_defaults():
    args = build_parser().parse_args(["campaign"])
    assert args.backend == "pool"
    assert args.fabric_listen is None
    assert args.fabric_loopback is None


def test_campaign_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign", "--backend", "carrier"])


def test_campaign_worker_parses_address():
    args = build_parser().parse_args(
        ["campaign-worker", "10.0.0.5:7000", "--name", "w7"]
    )
    assert args.address == "10.0.0.5:7000"
    assert args.name == "w7"


def test_campaign_worker_rejects_bad_address(capsys):
    assert main(["campaign-worker", "nocolonhere"]) == 2
    assert "host:port" in capsys.readouterr().err


@pytest.mark.slow
def test_campaign_fabric_backend_end_to_end(tmp_path, capsys):
    manifest_path = tmp_path / "run.manifest.json"
    code = main([
        "campaign", "--faults", "8", "--connections", "4",
        "--workers", "2", "--backend", "fabric",
        "--no-baseline", "--no-profile",
        "--manifest", str(manifest_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "metrics digest:" in out
    assert "fabric:" in out
    import json

    payload = json.loads(manifest_path.read_text())
    assert payload["fabric"]["backend"] == "fabric"
    assert payload["fabric"]["results"] >= 1
    assert len(payload["metrics_digest"]) == 64
