"""Tests for tables, report builders and shape checks."""

import pytest

from repro.faults.types import FaultType, iter_fault_types
from repro.reporting.compare import (
    ShapeCheck,
    compare_shape,
    table3_shape_checks,
    table4_shape_checks,
    table5_shape_checks,
)
from repro.reporting.paper import PAPER
from repro.reporting.report import (
    figure5_series,
    table1_fault_types,
    table3_faultload_details,
    table4_intrusiveness,
)
from repro.reporting.tables import TableBuilder, format_table


def test_format_table_alignment():
    text = format_table(["A", "Long header"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines[1:])) == 1  # aligned? no:
    # header/sep/rows padded to same widths per column
    assert "Long header" in lines[0]


def test_table_builder_validates_row_width():
    builder = TableBuilder(["a", "b"])
    with pytest.raises(ValueError):
        builder.add_row(1)
    builder.add_row(1, 2)
    assert "1" in builder.render()


def test_table_builder_csv():
    builder = TableBuilder(["a", "b"], title="t")
    builder.add_row(1, 2.5)
    csv = builder.to_csv()
    assert csv.splitlines() == ["a,b", "1,2.50"]


def test_table1_matches_paper_values():
    text = table1_fault_types().render()
    assert "MVI" in text and "Assignment" in text
    assert "50.69 %" in text
    for fault_type in iter_fault_types():
        assert fault_type.value in text


def test_table3_builder_counts():
    from repro.gswfit.scanner import scan_build
    from repro.ossim.builds import NT50

    faultload = scan_build(NT50)
    text = table3_faultload_details({"W2k": faultload}).render()
    assert str(len(faultload)) in text


def test_table4_builder_degradation_rows():
    from repro.specweb.metrics import SpecWebMetrics

    def metrics(thr, rtm):
        return SpecWebMetrics(
            spc=10, cc_percent=90, thr=thr, rtm_ms=rtm, er_percent=0,
            total_ops=10, total_errors=0, measured_seconds=1,
        )

    table = table4_intrusiveness({
        ("W2k", "apache"): (metrics(100.0, 350.0), metrics(99.0, 353.5)),
    })
    text = table.render()
    assert "Max. Perf." in text
    assert "Profile mode" in text
    assert "1.00" in text  # THR degradation percent


def test_figure5_series_structure():
    from repro.harness.metrics import DependabilityMetrics

    metrics = DependabilityMetrics(
        server_name="apache", os_display="W2k",
        spc_baseline=30, thr_baseline=100, rtm_baseline_ms=350,
        spcf=10, thrf=95, rtmf_ms=360, erf_percent=7.0,
        mis=5, kns=3, kcp=0,
    )
    series = figure5_series({("W2k", "apache"): metrics})
    assert series["SPCf"][("W2k", "apache")] == 10
    assert series["ADMf"][("W2k", "apache")] == 8
    assert set(series) >= {"SPC_baseline", "THRf", "ER%f", "MIS"}


def test_shape_check_str():
    check = ShapeCheck("claim", True, "detail")
    assert "PASS" in str(check)
    assert "FAIL" in str(ShapeCheck("claim", False, "d"))


def test_compare_shape_summary():
    passed, report = compare_shape([
        ShapeCheck("a", True, ""), ShapeCheck("b", False, ""),
    ])
    assert not passed
    assert "1/2" in report


def test_table3_shape_checks_pass_on_paper_numbers():
    w2k = {FaultType(k): v for k, v in PAPER["table3"]["win2000"].items()
           if k != "total"}
    xp = {FaultType(k): v for k, v in PAPER["table3"]["winxp"].items()
          if k != "total"}
    checks = table3_shape_checks(w2k, xp, 1714, 2927)
    assert all(check.passed for check in checks)


def test_table3_shape_checks_fail_on_flat_faultload():
    flat = {ft: 10 for ft in iter_fault_types()}
    checks = table3_shape_checks(flat, flat, 120, 120)
    assert not all(check.passed for check in checks)


def test_table4_shape_checks():
    checks = table4_shape_checks({"x": 1.9, "y": 0.3})
    assert all(c.passed for c in checks)
    checks = table4_shape_checks({"x": 9.0})
    assert not checks[0].passed


def _dep(server, erf, spc_rel, mis, kns, thr_rel=0.95):
    from repro.harness.metrics import DependabilityMetrics

    return DependabilityMetrics(
        server_name=server, os_display="os",
        spc_baseline=30, thr_baseline=100, rtm_baseline_ms=350,
        spcf=30 * spc_rel, thrf=100 * thr_rel, rtmf_ms=360,
        erf_percent=erf, mis=mis, kns=kns, kcp=0,
    )


def test_table5_shape_checks_pass_on_paper_like_data():
    metrics = {
        ("w2k", "apache"): _dep("apache", 7.7, 0.36, 60, 69),
        ("w2k", "abyss"): _dep("abyss", 21.9, 0.27, 130, 39),
        ("xp", "apache"): _dep("apache", 5.7, 0.40, 85, 103),
        ("xp", "abyss"): _dep("abyss", 14.5, 0.27, 163, 59),
    }
    checks = table5_shape_checks(metrics)
    assert all(check.passed for check in checks), "\n".join(
        str(c) for c in checks if not c.passed
    )


def test_table5_shape_checks_fail_when_winner_flips():
    metrics = {
        ("w2k", "apache"): _dep("apache", 7.7, 0.36, 60, 69),
        ("w2k", "abyss"): _dep("abyss", 21.9, 0.27, 130, 39),
        ("xp", "apache"): _dep("apache", 20.0, 0.10, 200, 103),
        ("xp", "abyss"): _dep("abyss", 5.0, 0.50, 20, 10),
    }
    checks = table5_shape_checks(metrics)
    assert not all(check.passed for check in checks)


def test_paper_reference_data_is_self_consistent():
    table3 = PAPER["table3"]
    for os_name in ("win2000", "winxp"):
        entries = {k: v for k, v in table3[os_name].items()
                   if k != "total"}
        assert sum(entries.values()) == table3[os_name]["total"]
    assert PAPER["table1"]["total"] == pytest.approx(
        sum(v for k, v in PAPER["table1"].items() if k != "total"),
        abs=0.01,
    )
