"""Tests for the results export."""

import json

import pytest

from repro.harness.results import BenchmarkResult, InjectionIteration
from repro.reporting.export import (
    export_campaign,
    export_faultload_summary,
)
from repro.specweb.metrics import SpecWebMetrics


def _metrics(spc=10.0, thr=40.0):
    return SpecWebMetrics(
        spc=spc, cc_percent=80.0, thr=thr, rtm_ms=300.0,
        er_percent=2.0, total_ops=1000, total_errors=20,
        measured_seconds=100.0,
    )


@pytest.fixture
def result():
    result = BenchmarkResult("apache", "nt50", "Windows 2000 SP4 (sim)")
    result.baseline = _metrics(spc=12.0)
    result.profile_mode = _metrics(spc=11.8)
    for iteration in (1, 2):
        result.add_iteration(InjectionIteration(
            iteration=iteration, metrics=_metrics(spc=4.0, thr=38.0),
            mis=3, kns=2, kcp=0, faults_injected=50,
            runtime_stats={"crashes": 7},
        ))
    return result


def test_export_campaign_files(tmp_path, result):
    written = export_campaign(result, tmp_path / "out")
    names = {path.name for path in written}
    assert names == {"campaign.json", "iterations.csv", "summary.txt"}
    for path in written:
        assert path.exists()


def test_campaign_json_contents(tmp_path, result):
    export_campaign(result, tmp_path)
    payload = json.loads((tmp_path / "campaign.json").read_text())
    assert payload["server"] == "apache"
    assert payload["baseline"]["spc"] == 12.0
    assert len(payload["iterations"]) == 2
    assert payload["iterations"][0]["row"]["MIS"] == 3
    assert payload["average"]["SPC"] == pytest.approx(4.0)
    assert payload["dependability"]["ADMf"] == pytest.approx(5.0)


def test_campaign_json_includes_config(tmp_path, result):
    from repro.harness.config import ExperimentConfig

    config = ExperimentConfig.smoke()
    export_campaign(result, tmp_path, config=config)
    payload = json.loads((tmp_path / "campaign.json").read_text())
    assert payload["config"]["seed"] == config.seed
    assert payload["config"]["connections"] == (
        config.client.connections
    )


def test_iterations_csv_shape(tmp_path, result):
    export_campaign(result, tmp_path)
    lines = (tmp_path / "iterations.csv").read_text().splitlines()
    assert lines[0].startswith("iteration,SPC,THR")
    assert len(lines) == 3  # header + 2 iterations


def test_summary_text_readable(tmp_path, result):
    export_campaign(result, tmp_path)
    text = (tmp_path / "summary.txt").read_text()
    assert "apache on Windows 2000" in text
    assert "average:" in text


def test_export_without_iterations(tmp_path):
    result = BenchmarkResult("abyss", "nt51", "XP")
    result.baseline = _metrics()
    written = export_campaign(result, tmp_path)
    payload = json.loads((tmp_path / "campaign.json").read_text())
    assert payload["dependability"] is None
    assert payload["average"] == {}
    assert len(written) == 3


def test_export_campaign_with_manifest_and_telemetry(tmp_path, result):
    from repro.harness.telemetry import (
        RunManifest,
        TelemetryWriter,
        metrics_digest,
    )

    manifest = RunManifest(
        campaign_key="k", server="apache", os_codename="nt50",
        os_display="W2k (sim)", seed=2004, build_fingerprint="f" * 64,
        faultload_digest="a" * 64, slots=96, workers=4,
        slots_per_shard=6, num_shards=16, iterations=2,
        journal_version=2, metrics_digest=metrics_digest(result),
    )
    telemetry_path = tmp_path / "raw-telemetry.jsonl"
    with TelemetryWriter(telemetry_path) as telemetry:
        telemetry.emit("campaign_start")
    written = export_campaign(
        result, tmp_path / "out", manifest=manifest,
        telemetry_path=telemetry_path,
    )
    names = {path.name for path in written}
    assert "run_manifest.json" in names
    assert "telemetry.jsonl" in names
    exported = json.loads(
        (tmp_path / "out" / "run_manifest.json").read_text()
    )
    assert exported["metrics_digest"] == manifest.metrics_digest


def test_export_campaign_reports_degradation(tmp_path, result):
    result.degraded = True
    result.quarantine = [{
        "iteration": 1, "shard_index": 3, "first_slot": 18,
        "num_slots": 6, "fault_ids": ["MFC-x"], "attempts": 3,
        "failures": ["crash: RuntimeError('boom')"],
    }]
    export_campaign(result, tmp_path)
    payload = json.loads((tmp_path / "campaign.json").read_text())
    assert payload["degraded"] is True
    assert payload["quarantine"][0]["shard_index"] == 3
    assert "DEGRADED" in (tmp_path / "summary.txt").read_text()


def test_export_faultload_summary(tmp_path):
    from repro.gswfit.scanner import scan_build
    from repro.ossim.builds import NT50

    faultload = scan_build(NT50).sample(30, seed=2)
    written = export_faultload_summary(faultload, tmp_path)
    assert {path.name for path in written} == {
        "faultload.json", "faultload_summary.json"
    }
    summary = json.loads(
        (tmp_path / "faultload_summary.json").read_text()
    )
    assert summary["total"] == 30
    assert sum(summary["by_type"].values()) == 30
    assert sum(summary["by_function"].values()) == 30
    # Round trip through the saved JSON.
    from repro.faults.faultload import Faultload

    reloaded = Faultload.load(tmp_path / "faultload.json")
    assert len(reloaded) == 30
