"""Tests for ASCII figure rendering."""

from repro.reporting.figures import bar_chart, figure5_panels


def test_bar_chart_scales_to_peak():
    text = bar_chart("t", {"a": 10.0, "b": 5.0}, width=20)
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[1].count("#") == 20
    assert lines[2].count("#") == 10


def test_bar_chart_zero_and_negative():
    text = bar_chart("t", {"a": 0.0, "b": -3.0, "c": 6.0})
    lines = text.splitlines()
    assert lines[1].count("#") == 0
    assert lines[2].count("#") == 0
    assert lines[3].count("#") > 0


def test_bar_chart_small_nonzero_still_visible():
    text = bar_chart("t", {"big": 1000.0, "small": 1.0}, width=20)
    assert text.splitlines()[2].count("#") == 1


def test_bar_chart_empty():
    assert "(no data)" in bar_chart("t", {})


def test_bar_chart_unit_suffix():
    text = bar_chart("t", {"a": 2.0}, unit=" ms")
    assert "2.0 ms" in text


def test_figure5_panels_structure():
    combos = [("W2k", "apache"), ("W2k", "abyss")]
    series = {
        name: {combo: float(i + 1) for i, combo in enumerate(combos)}
        for name in ("SPC_baseline", "SPCf", "THR_baseline", "THRf",
                     "RTM_baseline", "RTMf", "ER%f", "ADMf",
                     "MIS", "KNS", "KCP")
    }
    text = figure5_panels(series)
    assert "SPC: baseline vs faultload" in text
    assert "ADMf" in text
    assert "W2k/apache base" in text
    assert "W2k/abyss fault" in text
