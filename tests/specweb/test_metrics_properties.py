"""Property tests for the metric reduction's byte attribution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.specweb.metrics import MetricsCollector, OpRecord

_op = st.tuples(
    st.floats(min_value=0.1, max_value=59.9),   # completion time
    st.floats(min_value=0.01, max_value=25.0),  # latency (span)
    st.integers(min_value=1, max_value=500_000),  # bytes
    st.integers(min_value=0, max_value=5),      # connection
)


@settings(max_examples=60)
@given(st.lists(_op, min_size=1, max_size=40))
def test_property_window_bytes_conserve_totals(ops):
    """Spreading an op's bytes over windows never creates or destroys
    bytes, as long as the windows cover every op's span."""
    collector = MetricsCollector(6)
    total_bytes = 0
    for completed_at, latency, nbytes, connection in sorted(ops):
        collector.record(OpRecord(
            completed_at=completed_at,
            connection_id=connection,
            ok=True,
            latency=min(latency, completed_at),  # span within [0, t]
            bytes_received=nbytes,
        ))
        total_bytes += nbytes
    windows = [(float(i), float(i + 1)) for i in range(60)]
    attributed = collector._window_bytes(windows)
    assert sum(attributed.values()) == pytest.approx(
        total_bytes, rel=1e-6
    )


@settings(max_examples=60)
@given(st.lists(_op, min_size=1, max_size=40))
def test_property_truncated_windows_never_over_attribute(ops):
    """With windows covering only part of the timeline, attributed bytes
    can only shrink, never grow."""
    collector = MetricsCollector(6)
    total_bytes = 0
    for completed_at, latency, nbytes, connection in sorted(ops):
        collector.record(OpRecord(
            completed_at=completed_at,
            connection_id=connection,
            ok=True,
            latency=min(latency, completed_at),
            bytes_received=nbytes,
        ))
        total_bytes += nbytes
    partial = [(float(i), float(i + 1)) for i in range(0, 30)]
    attributed = collector._window_bytes(partial)
    assert sum(attributed.values()) <= total_bytes * (1 + 1e-9)


def test_zero_byte_records_ignored():
    collector = MetricsCollector(1)
    collector.record(OpRecord(
        completed_at=1.0, connection_id=0, ok=False,
        latency=0.5, bytes_received=0, error_kind="timeout",
    ))
    assert collector._window_bytes([(0.0, 2.0)]) == {}


def test_instantaneous_op_lands_in_its_window():
    collector = MetricsCollector(1)
    collector.record(OpRecord(
        completed_at=1.5, connection_id=0, ok=True,
        latency=0.0, bytes_received=1000,
    ))
    attributed = collector._window_bytes([(1.0, 2.0)])
    assert attributed[(0, 0)] == pytest.approx(1000)
