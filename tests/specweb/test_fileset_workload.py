"""Tests for the SPECWeb99 fileset and workload generator."""

import pytest

from repro.ossim.vfs import VirtualFileSystem
from repro.sim.rng import SeededRng
from repro.specweb.fileset import (
    CLASS_COUNT,
    FILES_PER_CLASS,
    SpecWebFileset,
)
from repro.specweb.workload import (
    OperationKind,
    WorkloadGenerator,
    POST_BODY_BYTES,
)


@pytest.fixture
def fileset():
    fs = SpecWebFileset(directories=3)
    vfs = VirtualFileSystem()
    fs.populate(vfs)
    return fs


def test_structure_counts(fileset):
    assert fileset.total_files() == 3 * CLASS_COUNT * FILES_PER_CLASS
    assert len(fileset.entries) == fileset.total_files()


def test_class_sizes_follow_specweb_pattern():
    fs = SpecWebFileset(directories=1)
    assert fs.file_size(0, 0) == 100
    assert fs.file_size(0, 8) == 900
    assert fs.file_size(1, 4) == 5_000
    assert fs.file_size(2, 0) == 10_000
    assert fs.file_size(3, 8) == 900_000


def test_mean_transfer_close_to_15kb():
    fs = SpecWebFileset(directories=1)
    assert 12_000 < fs.mean_transfer_bytes() < 18_000


def test_populate_creates_real_vfs_nodes(fileset):
    vfs_entry = fileset.entry("/dir00002/class3_8")
    assert vfs_entry is not None
    assert vfs_entry.size == 900_000


def test_entry_ground_truth_matches_vfs():
    fs = SpecWebFileset(directories=2)
    vfs = VirtualFileSystem()
    fs.populate(vfs)
    for url, entry in fs.entries.items():
        node = vfs.lookup(f"{fs.root}{url}")
        assert node is not None
        assert node.size == entry.size
        assert node.content_id == entry.content_id


def test_invalid_directory_count():
    with pytest.raises(ValueError):
        SpecWebFileset(directories=0)


def test_total_bytes_scales_with_directories():
    small = SpecWebFileset(directories=1).total_bytes()
    assert SpecWebFileset(directories=4).total_bytes() == 4 * small


def test_workload_mix_close_to_specweb(fileset):
    generator = WorkloadGenerator(fileset, SeededRng(5))
    counts = {kind: 0 for kind in OperationKind}
    for _ in range(4000):
        counts[generator.next_operation().kind] += 1
    assert 0.65 < counts[OperationKind.STATIC_GET] / 4000 < 0.75
    assert 0.20 < counts[OperationKind.DYNAMIC_GET] / 4000 < 0.30
    assert 0.03 < counts[OperationKind.POST] / 4000 < 0.08


def test_workload_deterministic_per_connection(fileset):
    a = WorkloadGenerator(fileset, SeededRng(5)).for_connection(3)
    b = WorkloadGenerator(fileset, SeededRng(5)).for_connection(3)
    ops_a = [a.next_operation().request.path for _ in range(20)]
    ops_b = [b.next_operation().request.path for _ in range(20)]
    assert ops_a == ops_b
    c = WorkloadGenerator(fileset, SeededRng(5)).for_connection(4)
    ops_c = [c.next_operation().request.path for _ in range(20)]
    assert ops_a != ops_c


def test_static_operations_carry_checkable_truth(fileset):
    generator = WorkloadGenerator(fileset, SeededRng(9))
    for _ in range(100):
        operation = generator.next_operation()
        if operation.kind is OperationKind.STATIC_GET:
            entry = fileset.entry(operation.request.path)
            assert operation.expected_size == entry.size
            assert operation.expected_content_id == entry.content_id
        elif operation.kind is OperationKind.DYNAMIC_GET:
            entry = fileset.entry(operation.request.path)
            assert operation.expected_size == entry.size + 128
            assert operation.request.dynamic
        else:
            assert operation.request.body_size == POST_BODY_BYTES


def test_class_mix_respects_weights(fileset):
    generator = WorkloadGenerator(fileset, SeededRng(6))
    class_counts = [0, 0, 0, 0]
    draws = 0
    for _ in range(5000):
        operation = generator.next_operation()
        if operation.kind is OperationKind.POST:
            continue
        draws += 1
        name = operation.request.path.rsplit("/", 1)[1]
        class_counts[int(name[5])] += 1
    assert class_counts[1] > class_counts[0] > class_counts[2]
    assert class_counts[3] < draws * 0.03
