"""Tests for the benchmark run rules."""

from repro.specweb.rules import RunRules


def test_paper_preset_matches_specweb99():
    rules = RunRules.paper()
    assert rules.warmup_seconds == 1200.0
    assert rules.rampup_seconds == 300.0
    assert rules.rampdown_seconds == 300.0
    assert rules.iterations == 3
    assert rules.slot_seconds == 10.0  # the paper's injection cadence


def test_scaled_preserves_structure():
    rules = RunRules.scaled()
    assert rules.iterations == RunRules.paper().iterations
    assert rules.slot_seconds == RunRules.paper().slot_seconds
    assert rules.warmup_seconds < RunRules.paper().warmup_seconds


def test_scaled_factor_scales_durations():
    single = RunRules.scaled(factor=1.0)
    double = RunRules.scaled(factor=2.0)
    assert double.warmup_seconds == 2 * single.warmup_seconds
    assert double.baseline_seconds == 2 * single.baseline_seconds
    # Slot structure is cadence, not duration: unaffected by the factor.
    assert double.slot_seconds == single.slot_seconds


def test_rules_are_frozen():
    import dataclasses

    import pytest

    rules = RunRules()
    with pytest.raises(dataclasses.FrozenInstanceError):
        rules.slot_seconds = 1.0
