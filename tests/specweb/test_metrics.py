"""Tests for conformance and metric reduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.specweb.conformance import connection_conforms
from repro.specweb.metrics import MetricsCollector, OpRecord


def test_conformance_rule_bitrate():
    # 10 s window: 320 kbit/s needs 400_000 bytes.
    assert connection_conforms(400_000, 10.0, ops=10, errors=0)
    assert not connection_conforms(399_000, 10.0, ops=10, errors=0)


def test_conformance_rule_errors():
    assert not connection_conforms(10**6, 10.0, ops=100, errors=1)
    assert connection_conforms(10**6, 10.0, ops=101, errors=1)


def test_conformance_requires_activity():
    assert not connection_conforms(0, 10.0, ops=0, errors=0)
    assert not connection_conforms(10**6, 0.0, ops=10, errors=0)


def _record(t, conn=0, ok=True, latency=0.2, nbytes=50_000, kind=""):
    return OpRecord(
        completed_at=t, connection_id=conn, ok=ok, latency=latency,
        bytes_received=nbytes, error_kind=kind,
    )


def _collector(records, connections=2):
    collector = MetricsCollector(connections)
    for record in records:
        collector.record(record)
    return collector


def test_records_between_bounds():
    collector = _collector([_record(1.0), _record(2.0), _record(3.0)])
    assert len(collector.records_between(0.0, 1.0)) == 1  # (0, 1]
    assert len(collector.records_between(1.0, 3.0)) == 2


def test_compute_basic_metrics():
    records = [
        _record(t, conn=t_index % 2, latency=0.25, nbytes=45_000)
        for t_index, t in enumerate(
            [i * 0.1 for i in range(1, 101)]
        )
    ]
    collector = _collector(records)
    metrics = collector.compute([(0.0, 10.0)])
    assert metrics.total_ops == 100
    assert metrics.thr == pytest.approx(10.0)
    assert metrics.rtm_ms == pytest.approx(250.0)
    assert metrics.er_percent == 0.0
    # Each conn moved ~2.25 MB over 10 s: conforming.
    assert metrics.spc == 2
    assert metrics.cc_percent == 100.0


def test_errors_disqualify_connection():
    records = [_record(i * 0.1, conn=0, nbytes=45_000)
               for i in range(1, 50)]
    records.append(_record(4.95, conn=0, ok=False, nbytes=0,
                           kind="status_500"))
    records += [_record(i * 0.1, conn=1, nbytes=45_000)
                for i in range(1, 50)]
    metrics = _collector(records).compute([(0.0, 5.0)])
    assert metrics.spc == 1  # conn 0 exceeded the 1% error rule
    assert metrics.total_errors == 1


def test_empty_windows_skipped_for_spc():
    records = [_record(0.5, nbytes=800_000), _record(0.9, nbytes=800_000)]
    metrics = _collector(records, connections=1).compute(
        [(0.0, 1.0), (5.0, 6.0)]
    )
    assert metrics.spc == 1  # the silent window does not average in
    assert metrics.measured_seconds == 2.0


def test_conformance_grouping_pools_windows():
    """One bad slot poisons its whole conformance group."""
    good = [_record(0.5 + i, conn=0, nbytes=500_000) for i in range(6)]
    bad = [_record(3.2, conn=0, ok=False, nbytes=0, kind="timeout")]
    collector = _collector(good + bad, connections=1)
    windows = [(float(i), float(i + 1)) for i in range(6)]
    grouped = collector.compute(windows, conformance_group=6)
    assert grouped.spc == 0  # 1 error / 7 ops >= 1%
    per_slot = collector.compute(windows, conformance_group=1)
    assert per_slot.spc > 0  # only the bad slot fails individually


def test_bytes_spread_across_windows():
    """A long transfer spanning two windows credits both."""
    # 10 s op ending at t=10 moved 800 kB: 400 kB in each 5 s window.
    collector = _collector(
        [_record(10.0, conn=0, latency=10.0, nbytes=800_000)],
        connections=1,
    )
    metrics = collector.compute([(0.0, 5.0), (5.0, 10.0)])
    # 400 kB / 5 s = 640 kbit/s in the completion window: conforming.
    assert metrics.spc == pytest.approx(1.0)


def test_timeouts_count_as_errors_in_er():
    records = [_record(1.0), _record(2.0, ok=False, kind="timeout")]
    metrics = _collector(records).compute([(0.0, 3.0)])
    assert metrics.er_percent == pytest.approx(50.0)


def test_rtm_only_over_successes():
    records = [
        _record(1.0, latency=0.1),
        _record(2.0, ok=False, latency=30.0, kind="timeout"),
    ]
    metrics = _collector(records).compute([(0.0, 3.0)])
    assert metrics.rtm_ms == pytest.approx(100.0)


def test_error_kind_tally():
    collector = _collector([
        _record(1.0, ok=False, kind="timeout"),
        _record(2.0, ok=False, kind="timeout"),
        _record(3.0, ok=False, kind="content"),
    ])
    assert collector.error_kinds == {"timeout": 2, "content": 1}


def test_metrics_as_dict_and_str():
    metrics = _collector([_record(1.0)]).compute([(0.0, 2.0)])
    data = metrics.as_dict()
    assert set(data) >= {"SPC", "CC%", "THR", "RTM", "ER%"}
    assert "SPC=" in str(metrics)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=9.99),
            st.booleans(),
            st.integers(min_value=0, max_value=100_000),
        ),
        min_size=1, max_size=60,
    )
)
def test_property_er_and_thr_consistent(op_specs):
    collector = MetricsCollector(4)
    for index, (t, ok, nbytes) in enumerate(sorted(op_specs)):
        collector.record(OpRecord(
            completed_at=t, connection_id=index % 4, ok=ok,
            latency=min(t, 0.2), bytes_received=nbytes if ok else 0,
            error_kind="" if ok else "status_500",
        ))
    metrics = collector.compute([(0.0, 10.0)])
    assert metrics.total_ops == len(op_specs)
    expected_errors = sum(1 for _t, ok, _b in op_specs if not ok)
    assert metrics.total_errors == expected_errors
    assert metrics.thr == pytest.approx(len(op_specs) / 10.0)
    assert 0.0 <= metrics.er_percent <= 100.0
    assert 0.0 <= metrics.spc <= 4
