"""Tests for the SPECWeb-like client against scripted transports."""

import pytest

from repro.ossim.vfs import SimBuffer, VirtualFileSystem
from repro.sim.kernel import Simulator
from repro.specweb.client import ClientConfig, SpecWebClient
from repro.specweb.fileset import SpecWebFileset
from repro.webservers.http import HttpResponse


@pytest.fixture
def world():
    sim = Simulator(seed=11)
    fileset = SpecWebFileset(directories=2)
    fileset.populate(VirtualFileSystem())
    return sim, fileset


def _perfect_transport(fileset):
    """A transport that answers every request correctly and instantly."""

    def transport(request, respond):
        if request.is_post:
            respond(HttpResponse(200, content_length=200))
            return
        entry = fileset.entry(request.path)
        if request.dynamic:
            respond(HttpResponse(200, content_length=entry.size + 128))
            return
        buffer = SimBuffer.for_content(entry.content_id, 0, entry.size)
        respond(HttpResponse(200, content_length=entry.size,
                             buffer=buffer))

    return transport


def test_client_runs_and_records_clean_ops(world):
    sim, fileset = world
    client = SpecWebClient(
        sim, _perfect_transport(fileset), fileset,
        config=ClientConfig(connections=4),
    )
    client.start()
    sim.run_until(30.0)
    assert client.total_ops() > 50
    assert client.total_errors() == 0


def test_client_detects_wrong_content(world):
    sim, fileset = world

    def corrupting(request, respond):
        entry = fileset.entry(request.path) if not request.is_post else None
        if entry is None:
            respond(HttpResponse(200, content_length=200))
            return
        size = entry.size if not request.dynamic else entry.size + 128
        # Right length, wrong bytes.
        buffer = SimBuffer.for_content(0xBAD, 0, entry.size)
        respond(HttpResponse(200, content_length=size, buffer=buffer))

    client = SpecWebClient(sim, corrupting, fileset,
                           config=ClientConfig(connections=2))
    client.start()
    sim.run_until(20.0)
    assert client.collector.error_kinds.get("content", 0) > 0


def test_client_detects_truncated_length(world):
    sim, fileset = world

    def truncating(request, respond):
        if request.is_post:
            respond(HttpResponse(200, content_length=200))
            return
        entry = fileset.entry(request.path)
        respond(HttpResponse(200, content_length=max(0, entry.size - 1)))

    client = SpecWebClient(sim, truncating, fileset,
                           config=ClientConfig(connections=2))
    client.start()
    sim.run_until(20.0)
    assert client.collector.error_kinds.get("length", 0) > 0


def test_client_counts_error_statuses(world):
    sim, fileset = world

    def failing(request, respond):
        respond(HttpResponse.error(503))

    client = SpecWebClient(sim, failing, fileset,
                           config=ClientConfig(connections=2))
    client.start()
    sim.run_until(10.0)
    assert client.total_errors() == client.total_ops()
    assert client.collector.error_kinds.get("status_503", 0) > 0


def test_refused_connection_backs_off(world):
    sim, fileset = world

    def refusing(request, respond):
        respond(None)

    config = ClientConfig(connections=1, refused_backoff=0.5)
    client = SpecWebClient(sim, refusing, fileset, config=config)
    client.start()
    sim.run_until(10.0)
    # Roughly one attempt per backoff period, not a tight loop.
    assert client.total_ops() < 25
    assert client.collector.error_kinds.get("refused", 0) > 0


def test_silent_transport_triggers_timeouts(world):
    sim, fileset = world

    def blackhole(request, respond):
        pass  # never respond

    config = ClientConfig(connections=2, op_timeout=3.0)
    client = SpecWebClient(sim, blackhole, fileset, config=config)
    client.start()
    sim.run_until(10.0)
    timeouts = client.collector.error_kinds.get("timeout", 0)
    assert timeouts >= 4  # ~3 per connection in 10 s


def test_late_response_after_timeout_ignored(world):
    sim, fileset = world
    pending = []

    def slow(request, respond):
        pending.append(respond)

    config = ClientConfig(connections=1, op_timeout=1.0)
    client = SpecWebClient(sim, slow, fileset, config=config)
    client.start()
    sim.run_until(2.0)
    ops_after_timeout = client.total_ops()
    assert ops_after_timeout >= 1
    # Deliver the stale response now; it must not double-count.
    pending[0](HttpResponse(200, content_length=10))
    sim.run_until(3.0)
    assert client.collector.error_kinds.get("timeout", 0) >= 1


def test_pause_stops_new_operations(world):
    sim, fileset = world
    client = SpecWebClient(
        sim, _perfect_transport(fileset), fileset,
        config=ClientConfig(connections=2),
    )
    client.start()
    sim.run_until(5.0)
    client.pause()
    sim.run_until(6.0)  # drain in-flight
    ops_at_pause = client.total_ops()
    sim.run_until(12.0)
    assert client.total_ops() == ops_at_pause
    client.resume()
    sim.run_until(15.0)
    assert client.total_ops() > ops_at_pause


def test_connection_rates_span_configured_band(world):
    sim, fileset = world
    config = ClientConfig(connections=30, min_rate_bps=300_000,
                          max_rate_bps=500_000)
    client = SpecWebClient(sim, _perfect_transport(fileset), fileset,
                           config=config)
    rates = [connection.rate_bps for connection in client.connections]
    assert min(rates) >= 300_000
    assert max(rates) <= 500_000
    assert max(rates) - min(rates) > 50_000  # genuinely spread


def test_two_clients_same_seed_identical(world):
    sim_a = Simulator(seed=77)
    sim_b = Simulator(seed=77)
    fileset = world[1]
    for sim in (sim_a, sim_b):
        client = SpecWebClient(
            sim, _perfect_transport(fileset), fileset,
            config=ClientConfig(connections=3),
            rng=sim.rng_for("client"),
        )
        client.start()
        sim.run_until(10.0)
        sim.client_ops = client.total_ops()
    assert sim_a.client_ops == sim_b.client_ops
