"""Edge cases for the state-fault injector and campaign."""

import pytest

from repro.extensions.experiment import ExtendedFaultCampaign
from repro.extensions.statefaults import (
    ConfigFileRemoval,
    DiskReadErrorBurst,
    LogVolumeFull,
    StateFault,
    StateFaultInjector,
)
from repro.harness.config import ExperimentConfig
from repro.harness.machine import ServerMachine


@pytest.fixture
def machine():
    machine = ServerMachine(ExperimentConfig.smoke())
    assert machine.boot()
    return machine


def test_restore_without_inject_is_noop(machine):
    injector = StateFaultInjector(machine)
    injector.restore(LogVolumeFull())  # never injected: fine
    assert machine.kernel.vfs.capacity_bytes > 0


def test_base_fault_requires_overrides(machine):
    fault = StateFault()
    with pytest.raises(NotImplementedError):
        fault.apply(machine)
    with pytest.raises(NotImplementedError):
        fault.revert(machine, None)


def test_fault_ids_are_classed():
    assert ConfigFileRemoval().fault_id == (
        "operator:config-file-removal"
    )
    assert DiskReadErrorBurst().fault_id == (
        "hardware:disk-read-error-burst"
    )


def test_config_removal_on_missing_file_is_harmless(machine):
    machine.kernel.vfs.delete("/etc/apache.conf")
    injector = StateFaultInjector(machine)
    fault = ConfigFileRemoval()
    injector.inject(fault)      # nothing to remove
    injector.restore(fault)     # nothing to restore
    assert machine.kernel.vfs.lookup("/etc/apache.conf") is None


def test_same_fault_type_cannot_nest(machine):
    """Two instances of one fault type share a fault id: the injector
    refuses to stack them (reverting would be ambiguous)."""
    injector = StateFaultInjector(machine)
    injector.inject(DiskReadErrorBurst(period=5))
    with pytest.raises(ValueError):
        injector.inject(DiskReadErrorBurst(period=3))
    injector.restore(DiskReadErrorBurst())
    assert machine.kernel.vfs.read_fault_period == 0


def test_different_fault_types_nest_and_revert(machine):
    injector = StateFaultInjector(machine)
    vfs = machine.kernel.vfs
    capacity = vfs.capacity_bytes
    injector.inject(DiskReadErrorBurst(period=5))
    injector.inject(LogVolumeFull())
    assert vfs.read_fault_period == 5
    assert vfs.capacity_bytes == vfs.used_bytes
    injector.restore_all()
    assert vfs.read_fault_period == 0
    assert vfs.capacity_bytes == capacity


def test_campaign_with_single_class():
    config = ExperimentConfig.smoke()
    campaign = ExtendedFaultCampaign(
        config, faults=[LogVolumeFull(), DiskReadErrorBurst()]
    )
    results = campaign.run()
    assert set(results) == {"operator", "hardware"}
    assert results["operator"].faults_injected == 1


def test_injection_count_tracked(machine):
    injector = StateFaultInjector(machine)
    with injector.injected(LogVolumeFull()):
        pass
    with injector.injected(DiskReadErrorBurst()):
        pass
    assert injector.injection_count == 2
