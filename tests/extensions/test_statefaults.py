"""Tests for the hardware/operator fault-model extension."""

import pytest

from repro.extensions.statefaults import (
    ConfigFileRemoval,
    DiskReadErrorBurst,
    HeapMetadataCorruption,
    LogVolumeFull,
    MistakenProcessKill,
    StaleHandleFault,
    StateFaultInjector,
    standard_extension_faultload,
)
from repro.harness.config import ExperimentConfig
from repro.harness.machine import ServerMachine
from repro.webservers.http import HttpRequest
from repro.webservers.runtime import RuntimeState


@pytest.fixture
def machine():
    config = ExperimentConfig.smoke()
    machine = ServerMachine(config)
    assert machine.boot()
    return machine


def _serve(machine, path="/dir00000/class1_2"):
    outcome = []
    machine.runtime.deliver(HttpRequest("GET", path), outcome.append)
    machine.run_for(2.0)
    return outcome[0] if outcome else None


def test_heap_corruption_damages_later_operations(machine):
    injector = StateFaultInjector(machine)
    with injector.injected(HeapMetadataCorruption()):
        crashed_or_errored = False
        for _ in range(20):
            response = _serve(machine)
            if response is None or not response.ok:
                crashed_or_errored = True
                break
    assert crashed_or_errored


def test_disk_read_burst_corrupts_some_content(machine):
    injector = StateFaultInjector(machine)
    fault = DiskReadErrorBurst(period=3)
    entry = machine.fileset.entry("/dir00000/class1_2")
    from repro.ossim.vfs import SimBuffer

    expected = SimBuffer.for_content(entry.content_id, 0, entry.size)
    with injector.injected(fault):
        buffers = [
            _serve(machine).buffer for _ in range(6)
        ]
    corrupted = [b for b in buffers if b is not None and b != expected]
    assert corrupted, "some reads must return corrupted sectors"
    # Reverted: reads are clean again.
    assert machine.kernel.vfs.read_fault_period == 0
    assert _serve(machine).buffer == expected


def test_mistaken_kill_leaves_server_dead(machine):
    injector = StateFaultInjector(machine)
    injector.inject(MistakenProcessKill())
    assert machine.runtime.state is RuntimeState.DEAD
    assert _serve(machine) is None  # refused
    injector.restore(MistakenProcessKill())
    # Recovery is the administrator's job, not the fault's revert.
    assert machine.runtime.state is RuntimeState.DEAD
    assert machine.runtime.restart()
    assert _serve(machine).ok


def test_config_removal_is_latent_until_restart(machine):
    injector = StateFaultInjector(machine)
    fault = ConfigFileRemoval()
    injector.inject(fault)
    # Still serving: the fault is latent.
    assert _serve(machine).ok
    # A restart during the fault fails at startup.
    assert not machine.runtime.restart()
    injector.restore(fault)
    assert machine.kernel.vfs.lookup("/etc/apache.conf") is not None
    assert machine.runtime.restart()


def test_log_volume_full_breaks_posts(machine):
    injector = StateFaultInjector(machine)
    with injector.injected(LogVolumeFull()):
        outcome = []
        machine.runtime.deliver(
            HttpRequest("POST", "/postlog/form", body_size=200),
            outcome.append,
        )
        machine.run_for(2.0)
        assert outcome[0] is not None
        assert not outcome[0].ok
    # Reverted: posts work again.
    outcome = []
    machine.runtime.deliver(
        HttpRequest("POST", "/postlog/form", body_size=200),
        outcome.append,
    )
    machine.run_for(2.0)
    assert outcome[0].ok


def test_stale_handle_fault_applies_without_crash(machine):
    injector = StateFaultInjector(machine)
    _serve(machine)  # populate some handles
    with injector.injected(StaleHandleFault()):
        # The server may or may not stumble depending on which handle
        # went stale; the machine must remain driveable either way.
        for _ in range(5):
            _serve(machine)


def test_double_inject_rejected(machine):
    injector = StateFaultInjector(machine)
    fault = LogVolumeFull()
    injector.inject(fault)
    with pytest.raises(ValueError):
        injector.inject(fault)
    injector.restore(fault)


def test_restore_all(machine):
    injector = StateFaultInjector(machine)
    injector.inject(LogVolumeFull())
    injector.inject(DiskReadErrorBurst())
    injector.restore_all()
    vfs = machine.kernel.vfs
    assert vfs.read_fault_period == 0
    assert vfs.capacity_bytes > vfs.used_bytes


def test_standard_faultload_composition():
    faults = standard_extension_faultload(repetitions=2)
    assert len(faults) == 12
    classes = {fault.fault_class for fault in faults}
    assert classes == {"hardware", "operator"}


def test_extended_campaign_reports_per_class():
    from repro.extensions.experiment import ExtendedFaultCampaign

    config = ExperimentConfig.smoke()
    campaign = ExtendedFaultCampaign(
        config, faults=standard_extension_faultload(repetitions=1)
    )
    results = campaign.run()
    assert set(results) == {"hardware", "operator"}
    operator = results["operator"]
    assert operator.faults_injected == 3
    # A mistaken kill guarantees at least one MIS in the operator class.
    assert operator.mis >= 1
    assert operator.metrics.total_ops > 0
