"""Unit and property tests for the virtual file system."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ossim.vfs import SimBuffer, VirtualFileSystem


@pytest.fixture
def vfs():
    fs = VirtualFileSystem()
    fs.mkdir("/site/docs", parents=True)
    fs.create_file("/site/docs/a.html", size=1000)
    return fs


def test_lookup_root(vfs):
    assert vfs.lookup("/") is vfs.root
    assert vfs.lookup("") is vfs.root


def test_lookup_file_and_missing(vfs):
    node = vfs.lookup("/site/docs/a.html")
    assert node is not None and not node.is_dir
    assert vfs.lookup("/site/docs/missing") is None
    assert vfs.lookup("/nope/a") is None


def test_path_roundtrip(vfs):
    node = vfs.lookup("/site/docs/a.html")
    assert node.path() == "/site/docs/a.html"


def test_mkdir_idempotent(vfs):
    first = vfs.mkdir("/site/docs")
    assert first is vfs.lookup("/site/docs")


def test_mkdir_through_file_fails(vfs):
    assert vfs.mkdir("/site/docs/a.html/sub", parents=True) is None


def test_create_file_conflicts(vfs):
    assert vfs.create_file("/site/docs/a.html") is None  # exists
    assert vfs.create_file("/no/parent/file") is None


def test_create_file_capacity():
    fs = VirtualFileSystem(capacity_bytes=100)
    fs.mkdir("/d", parents=True)
    assert fs.create_file("/d/big", size=200) is None
    assert fs.create_file("/d/ok", size=50) is not None


def test_delete_file(vfs):
    assert vfs.delete("/site/docs/a.html")
    assert vfs.lookup("/site/docs/a.html") is None
    assert not vfs.delete("/site/docs/a.html")


def test_delete_nonempty_dir_fails(vfs):
    assert not vfs.delete("/site/docs")
    vfs.delete("/site/docs/a.html")
    assert vfs.delete("/site/docs")


def test_delete_open_file_fails(vfs):
    node = vfs.lookup("/site/docs/a.html")
    node.open_count = 1
    assert not vfs.delete("/site/docs/a.html")


def test_listdir(vfs):
    vfs.create_file("/site/docs/b.html", size=10)
    assert vfs.listdir("/site/docs") == ["a.html", "b.html"]
    assert vfs.listdir("/site/docs/a.html") is None


def test_read_within_file(vfs):
    node = vfs.lookup("/site/docs/a.html")
    buffer = vfs.read(node, 0, 400)
    assert buffer.length == 400
    assert buffer.matches(node.content_id, 0, 400)


def test_read_truncates_at_eof(vfs):
    node = vfs.lookup("/site/docs/a.html")
    buffer = vfs.read(node, 900, 400)
    assert buffer.length == 100


def test_read_past_eof_empty(vfs):
    node = vfs.lookup("/site/docs/a.html")
    assert vfs.read(node, 2000, 10).length == 0


def test_write_grows_file_and_changes_content(vfs):
    node = vfs.lookup("/site/docs/a.html")
    old_content = node.content_id
    written = vfs.write(node, 900, 400)
    assert written == 400
    assert node.size == 1300
    assert node.content_id != old_content


def test_write_negative_rejected(vfs):
    node = vfs.lookup("/site/docs/a.html")
    assert vfs.write(node, -1, 10) == -1
    assert vfs.write(node, 0, -10) == -1


def test_write_capacity_enforced():
    fs = VirtualFileSystem(capacity_bytes=1000)
    fs.mkdir("/d", parents=True)
    node = fs.create_file("/d/f", size=500)
    assert fs.write(node, 500, 1000) == -1
    assert node.size == 500


def test_truncate(vfs):
    node = vfs.lookup("/site/docs/a.html")
    assert vfs.truncate(node, 100)
    assert node.size == 100
    assert not vfs.truncate(node, -5)


def test_buffer_detects_wrong_offset(vfs):
    """A read from the wrong offset is distinguishable — the corruption
    channel the benchmark client's content validation relies on."""
    node = vfs.lookup("/site/docs/a.html")
    good = vfs.read(node, 0, 100)
    shifted = vfs.read(node, 4, 100)
    assert good != shifted


def test_buffer_detects_stale_content(vfs):
    node = vfs.lookup("/site/docs/a.html")
    before = vfs.read(node, 0, 100)
    vfs.write(node, 0, 10)
    after = vfs.read(node, 0, 100)
    assert before != after


def test_simbuffer_equality_and_hash():
    a = SimBuffer.for_content(42, 0, 10)
    b = SimBuffer.for_content(42, 0, 10)
    c = SimBuffer.for_content(42, 1, 10)
    assert a == b and hash(a) == hash(b)
    assert a != c


def test_count_files(vfs):
    assert vfs.count_files() == 1
    vfs.create_file("/site/docs/b", size=1)
    assert vfs.count_files() == 2


_name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=122),
    min_size=1, max_size=8,
)


@settings(max_examples=40)
@given(st.lists(_name, min_size=1, max_size=4, unique=True))
def test_property_create_then_lookup(names):
    """Every created file is found at exactly its own path."""
    fs = VirtualFileSystem()
    fs.mkdir("/root", parents=True)
    for name in names:
        node = fs.create_file(f"/root/{name}", size=10)
        assert node is not None
    for name in names:
        found = fs.lookup(f"/root/{name}")
        assert found is not None
        assert found.path() == f"/root/{name}"
    assert fs.listdir("/root") == sorted(names)


@settings(max_examples=40)
@given(st.integers(min_value=1, max_value=5000),
       st.integers(min_value=0, max_value=6000),
       st.integers(min_value=0, max_value=6000))
def test_property_read_window_never_exceeds_file(size, offset, length):
    fs = VirtualFileSystem()
    fs.mkdir("/d", parents=True)
    node = fs.create_file("/d/f", size=size)
    buffer = fs.read(node, offset, length)
    assert 0 <= buffer.length <= min(max(0, length), size)
    if offset < size and length > 0:
        assert buffer.length == min(length, size - offset)
