"""Contract tests for the record channel (NtWriteFile records,
NtQueryFileRecords, SetEndOfFile) on both builds."""

import pytest

from repro.ossim.status import NtStatus


@pytest.fixture
def db_handle(ctx):
    ctx.vfs.mkdir("/db", parents=True)
    handle = ctx.api.CreateFileW("/db/t.dat", "rw", 4)
    assert handle != 0
    return handle


def test_write_record_and_query(ctx, db_handle):
    status, written = ctx.api.NtWriteFile(
        db_handle, 64, 0, ("acct", 1, 500)
    )
    assert status == NtStatus.SUCCESS and written == 64
    status, records = ctx.api.NtQueryFileRecords(db_handle, 0, 1000)
    assert status == NtStatus.SUCCESS
    assert records == [(0, ("acct", 1, 500))]


def test_record_overwrite_at_same_offset(ctx, db_handle):
    ctx.api.NtWriteFile(db_handle, 64, 0, ("acct", 1, 500))
    ctx.api.NtWriteFile(db_handle, 64, 0, ("acct", 1, 999))
    _status, records = ctx.api.NtQueryFileRecords(db_handle, 0, 1000)
    assert records == [(0, ("acct", 1, 999))]


def test_records_returned_in_offset_order(ctx, db_handle):
    for offset in (128, 0, 64):
        ctx.api.NtWriteFile(db_handle, 64, offset, ("r", offset))
    _status, records = ctx.api.NtQueryFileRecords(db_handle, 0, 1000)
    assert [offset for offset, _record in records] == [0, 64, 128]


def test_query_range_is_half_open(ctx, db_handle):
    ctx.api.NtWriteFile(db_handle, 64, 0, ("a",))
    ctx.api.NtWriteFile(db_handle, 64, 64, ("b",))
    _status, records = ctx.api.NtQueryFileRecords(db_handle, 0, 64)
    assert [record for _o, record in records] == [("a",)]
    _status, records = ctx.api.NtQueryFileRecords(db_handle, 64, 64)
    assert [record for _o, record in records] == [("b",)]


def test_query_invalid_handle_and_range(ctx, db_handle):
    assert ctx.api.NtQueryFileRecords(999, 0, 10)[0] == (
        NtStatus.INVALID_HANDLE
    )
    assert ctx.api.NtQueryFileRecords(db_handle, -1, 10)[0] == (
        NtStatus.INVALID_PARAMETER
    )
    assert ctx.api.NtQueryFileRecords(db_handle, 0, -1)[0] == (
        NtStatus.INVALID_PARAMETER
    )


def test_plain_writes_unaffected(ctx, db_handle):
    """The record channel is optional: classic writes behave as before."""
    status, written = ctx.api.NtWriteFile(db_handle, 100)
    assert status == NtStatus.SUCCESS and written == 100
    _status, records = ctx.api.NtQueryFileRecords(db_handle, 0, 1000)
    assert records == []


def test_set_end_of_file_truncates_records(ctx, db_handle):
    ctx.api.NtWriteFile(db_handle, 64, 0, ("keep",))
    ctx.api.NtWriteFile(db_handle, 64, 256, ("drop",))
    assert ctx.api.SetFilePointer(db_handle, 128, 0) == 128
    assert ctx.api.SetEndOfFile(db_handle)
    _status, info = ctx.api.NtQueryInformationFile(db_handle)
    assert info["size"] == 128
    _status, records = ctx.api.NtQueryFileRecords(db_handle, 0, 1000)
    assert [record for _o, record in records] == [("keep",)]


def test_set_end_of_file_to_zero_empties(ctx, db_handle):
    ctx.api.NtWriteFile(db_handle, 64, 0, ("x",))
    ctx.api.SetFilePointer(db_handle, 0, 0)
    assert ctx.api.SetEndOfFile(db_handle)
    _status, records = ctx.api.NtQueryFileRecords(db_handle, 0, 1000)
    assert records == []


def test_set_end_of_file_invalid_handle(ctx):
    assert not ctx.api.SetEndOfFile(0)


def test_records_survive_reopen(ctx, db_handle):
    """Durability: records persist across handle close/reopen —
    the property the WAL engine's recovery rests on."""
    ctx.api.NtWriteFile(db_handle, 64, 0, ("durable", 42))
    ctx.api.CloseHandle(db_handle)
    again = ctx.api.CreateFileW("/db/t.dat", "rw", 3)
    _status, records = ctx.api.NtQueryFileRecords(again, 0, 1000)
    assert records == [(0, ("durable", 42))]
    ctx.api.CloseHandle(again)
