"""Tests for the API dispatcher (tracing, charging, fault semantics)."""

import pytest

from repro.ossim.builds import NT50
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import ApiTable, OsInstance
from repro.ossim.status import NtStatus
from repro.profiling.tracer import ApiCallTracer
from repro.sim.errors import SimSegfault


@pytest.fixture
def osi():
    return OsInstance(NT50, SimKernel())


def test_unknown_export_raises_attribute_error(osi):
    ctx = osi.new_process()
    with pytest.raises(AttributeError):
        ctx.api.NtTotallyMadeUp


def test_nt51_only_export_absent_on_nt50(osi):
    ctx = osi.new_process()
    with pytest.raises(AttributeError):
        ctx.api.NtQueryAttributesFile


def test_every_export_resolves(osi):
    ctx = osi.new_process()
    for name in ctx.api.export_names():
        assert callable(getattr(ctx.api, name))


def test_calls_charge_base_cost(osi):
    ctx = osi.new_process()
    before = ctx.cpu.total_cycles
    ctx.api.GetLastError()
    cost = ctx.cpu.total_cycles - before
    assert cost >= NT50.base_cost("GetLastError")


def test_calls_counted_on_context(osi):
    ctx = osi.new_process()
    ctx.api.GetLastError()
    ctx.api.GetLastError()
    assert ctx.api_calls == 2


def test_tracer_sees_calls_with_module_names(osi):
    tracer = ApiCallTracer()
    osi.attach_tracer(tracer)
    ctx = osi.new_process()
    ctx.api.RtlEnterCriticalSection("x")
    ctx.api.RtlLeaveCriticalSection("x")
    assert tracer.counts[("Ntdll", "RtlEnterCriticalSection")] == 1
    assert tracer.total_calls == 2


def test_tracer_detach(osi):
    tracer = ApiCallTracer()
    osi.attach_tracer(tracer)
    ctx = osi.new_process()
    ctx.api.GetLastError()
    osi.attach_tracer(None)
    ctx.api.GetLastError()
    assert tracer.total_calls == 1


def test_tracer_attached_late_sees_existing_processes(osi):
    """Attaching rebuilds the wrappers of already-bound tables."""
    ctx = osi.new_process()
    ctx.api.GetLastError()
    tracer = ApiCallTracer()
    osi.attach_tracer(tracer)
    ctx.api.GetLastError()
    assert tracer.total_calls == 1


def test_untraced_wrapper_carries_no_tracer_reference(osi):
    """The zero-overhead guarantee is structural: with no tracer
    attached, the wrapper's closure and names contain no trace of
    tracing — there is no branch left to mispredict."""
    ctx = osi.new_process()
    wrapper = ctx.api.GetLastError
    cells = [cell.cell_contents for cell in wrapper.__closure__]
    assert not any(isinstance(cell, ApiCallTracer) for cell in cells)
    assert "tracer" not in wrapper.__code__.co_names
    assert "record" not in wrapper.__code__.co_freevars
    tracer = ApiCallTracer()
    osi.attach_tracer(tracer)
    traced = ctx.api.GetLastError
    assert traced is not wrapper
    assert tracer.record in [
        cell.cell_contents for cell in traced.__closure__
    ]
    osi.attach_tracer(None)
    detached = ctx.api.GetLastError
    assert "record" not in detached.__code__.co_freevars


def test_wrapper_cached_in_instance_dict(osi):
    """Repeat lookups bypass __getattr__ (same object, in __dict__)."""
    ctx = osi.new_process()
    first = ctx.api.GetLastError
    assert ctx.api.GetLastError is first
    assert ctx.api.__dict__["GetLastError"] is first


def test_pristine_os_propagates_our_bugs(osi):
    """Without fault_mode, unexpected exceptions must stay loud."""
    ctx = osi.new_process()
    with pytest.raises(TypeError):
        ctx.api.RtlAllocateHeap("not a size", 0)


def test_fault_mode_converts_to_segfault(osi):
    osi.fault_mode = True
    ctx = osi.new_process()
    with pytest.raises(SimSegfault):
        ctx.api.RtlAllocateHeap("not a size", 0)


def test_fault_mode_preserves_simulated_conditions(osi):
    """Machine-level exceptions keep their type even in fault mode."""
    osi.fault_mode = True
    ctx = osi.new_process()
    ctx.api.RtlEnterCriticalSection("leak")
    other = osi.new_process()
    # Different process: its own registry; same process, other thread:
    ctx.set_thread("other-thread")
    from repro.sim.errors import SimBlockedForever

    with pytest.raises(SimBlockedForever):
        ctx.api.RtlEnterCriticalSection("leak")


def test_code_swap_visible_through_existing_table(osi):
    """The dispatch must see a __code__ swap done after binding."""
    from repro.ossim.modules import ntdll50

    ctx = osi.new_process()
    assert ctx.api.RtlSizeHeap(0) == -1

    def fake(ctx_arg, address):
        return 12345

    original = ntdll50.RtlSizeHeap.__code__
    try:
        ntdll50.RtlSizeHeap.__code__ = fake.__code__
        assert ctx.api.RtlSizeHeap(0) == 12345
    finally:
        ntdll50.RtlSizeHeap.__code__ = original
    assert ctx.api.RtlSizeHeap(0) == -1


def test_boot_count_increments():
    kernel = SimKernel()
    OsInstance(NT50, kernel)
    OsInstance(NT50, kernel)
    assert kernel.boot_count == 2
