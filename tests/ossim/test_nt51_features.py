"""Tests for features only the NT 5.1 build has."""

import pytest

from repro.ossim.builds import NT50, NT51
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.ossim.status import NtStatus
from repro.ossim.strings import unicode_view


@pytest.fixture
def ctx51():
    os_instance = OsInstance(NT51, SimKernel())
    vfs = os_instance.kernel.vfs
    vfs.mkdir("/site", parents=True)
    vfs.create_file("/site/a.html", size=2000)
    return os_instance.new_process()


def test_nt51_is_superset_of_nt50_exports():
    missing = set(NT50.export_names()) - set(NT51.export_names())
    assert missing == set()
    extra = set(NT51.export_names()) - set(NT50.export_names())
    assert "NtQueryAttributesFile" in extra
    assert "RtlValidateUnicodeString" in extra
    assert "GetFileAttributesW" in extra


def test_reserved_device_names_rejected(ctx51):
    status, result = ctx51.api.RtlDosPathNameToNtPathName_U("/site/con")
    assert status == NtStatus.OBJECT_NAME_NOT_FOUND
    status, result = ctx51.api.RtlDosPathNameToNtPathName_U(
        "/site/aux.txt"
    )
    assert status == NtStatus.OBJECT_NAME_NOT_FOUND


def test_trailing_dots_rejected(ctx51):
    status, _ = ctx51.api.RtlDosPathNameToNtPathName_U("/site/a...")
    # "a..." trims to "a" which is fine; a component of only dots dies.
    assert status in (NtStatus.SUCCESS, NtStatus.OBJECT_NAME_NOT_FOUND)
    status, _ = ctx51.api.RtlDosPathNameToNtPathName_U("/site/ .")
    assert status == NtStatus.OBJECT_NAME_NOT_FOUND


def test_nt50_allows_device_names():
    """The hardening is 5.1-only, so the builds genuinely differ."""
    os_instance = OsInstance(NT50, SimKernel())
    ctx = os_instance.new_process()
    status, nt_path = ctx.api.RtlDosPathNameToNtPathName_U("/site/con")
    assert status == NtStatus.SUCCESS
    ctx.api.RtlFreeUnicodeString(nt_path)


def test_validate_unicode_string(ctx51):
    good = unicode_view("abc")
    assert ctx51.api.RtlValidateUnicodeString(good) == NtStatus.SUCCESS
    bad = unicode_view("abc")
    bad.length = 5  # odd
    assert ctx51.api.RtlValidateUnicodeString(bad) == (
        NtStatus.INVALID_PARAMETER
    )


def test_query_attributes_file(ctx51):
    status, nt_path = ctx51.api.RtlDosPathNameToNtPathName_U(
        "/site/a.html"
    )
    status, attributes = ctx51.api.NtQueryAttributesFile(nt_path)
    assert status == NtStatus.SUCCESS
    assert attributes == {
        "directory": False, "size": 2000, "read_only": False,
    }
    ctx51.api.RtlFreeUnicodeString(nt_path)


def test_get_file_attributes_w(ctx51):
    attributes = ctx51.api.GetFileAttributesW("/site/a.html")
    assert attributes == 0x80  # FILE_ATTRIBUTE_NORMAL
    assert ctx51.api.GetFileAttributesW("/site") == 0x10  # DIRECTORY
    assert ctx51.api.GetFileAttributesW("/site/no") == -1


def test_lookaside_reuses_small_blocks(ctx51):
    api = ctx51.api
    address = api.RtlAllocateHeap(128, 0)
    api.RtlFreeHeap(address)
    # The engine free-list also recycles; what's observable is stability.
    again = api.RtlAllocateHeap(128, 0)
    assert again != 0
    api.RtlFreeHeap(again)
    state = ctx51.os_state.get("lookaside")
    assert state is not None
    assert state["misses"] >= 1


def test_prefetch_discount_for_sequential_reads(ctx51):
    """Sequential reads are cheaper per byte than random reads on 5.1."""
    api = ctx51.api
    status, nt_path = api.RtlDosPathNameToNtPathName_U("/site/a.html")
    _status, handle = api.NtOpenFile(nt_path, "r")
    api.RtlFreeUnicodeString(nt_path)

    api.NtReadFile(handle, 500)  # primes the window
    before = ctx51.cpu.total_cycles
    api.NtReadFile(handle, 500)  # sequential: discounted
    sequential_cost = ctx51.cpu.total_cycles - before

    api.NtSetInformationFile(handle, 0)  # seek invalidates the window
    before = ctx51.cpu.total_cycles
    api.NtReadFile(handle, 500)
    random_cost = ctx51.cpu.total_cycles - before
    assert sequential_cost < random_cost
    api.NtClose(handle)


def test_negative_handle_rejected_by_51(ctx51):
    assert ctx51.api.NtClose(-4) == NtStatus.INVALID_HANDLE
    assert not ctx51.api.CloseHandle(-4)


def test_file_open_accounting(ctx51):
    api = ctx51.api
    status, nt_path = api.RtlDosPathNameToNtPathName_U("/site/a.html")
    _status, handle = api.NtOpenFile(nt_path, "r")
    api.NtClose(handle)
    api.RtlFreeUnicodeString(nt_path)
    assert ctx51.os_state.get("file_opens", 0) >= 1
