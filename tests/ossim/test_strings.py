"""Unit tests for counted-string structures."""

from repro.ossim.strings import (
    AnsiString,
    UnicodeString,
    ansi_view,
    unicode_view,
)


def test_ansi_view_consistent():
    s = ansi_view("hello")
    assert s.consistent()
    assert s.text() == "hello"
    assert s.length == 5
    assert s.maximum_length == 6


def test_unicode_view_consistent():
    s = unicode_view("hello")
    assert s.consistent()
    assert s.text() == "hello"
    assert s.length == 10
    assert s.char_count() == 5


def test_text_trusts_length_field_not_buffer():
    """Consumers see the counted window — a wrong length truncates."""
    s = unicode_view("abcdef")
    s.length = 6  # 3 characters
    assert s.text() == "abc"
    assert not s.consistent()


def test_negative_length_yields_empty_text():
    s = ansi_view("abc")
    s.length = -2
    assert s.text() == ""
    assert not s.consistent()


def test_unicode_odd_length_inconsistent():
    s = unicode_view("ab")
    s.length = 3
    assert not s.consistent()


def test_length_beyond_maximum_inconsistent():
    s = ansi_view("abc")
    s.maximum_length = 2
    assert not s.consistent()


def test_empty_strings():
    assert ansi_view("").consistent()
    assert unicode_view("").consistent()
    assert unicode_view("").text() == ""


def test_default_construction():
    assert AnsiString().text() == ""
    assert UnicodeString().char_count() == 0
