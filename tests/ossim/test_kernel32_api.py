"""Contract tests for the kernel32-like API (both builds)."""

import pytest

from repro.ossim.modules.kernel3250 import (
    ERROR_FILE_NOT_FOUND,
    ERROR_INVALID_HANDLE,
    ERROR_SUCCESS,
)
from repro.ossim.status import NtStatus


def test_create_open_read_close_cycle(ctx):
    handle = ctx.api.CreateFileW("/site/dir0/index.html", "r", 3)
    assert handle != 0
    ok, buffer, count = ctx.api.ReadFile(handle, 4096)
    assert ok and count == 4096
    assert buffer is not None
    assert ctx.api.CloseHandle(handle)


def test_create_missing_file_sets_last_error(ctx):
    handle = ctx.api.CreateFileW("/site/dir0/none.html", "r", 3)
    assert handle == 0
    assert ctx.api.GetLastError() == ERROR_FILE_NOT_FOUND


def test_create_file_path_buffer_released(ctx):
    """CreateFileW must free the intermediate NT path on every path."""
    before = ctx.heap.live_blocks()
    handle = ctx.api.CreateFileW("/site/dir0/index.html", "r", 3)
    ctx.api.CloseHandle(handle)
    ctx.api.CreateFileW("/site/dir0/none.html", "r", 3)
    assert ctx.heap.live_blocks() == before


def test_create_new_disposition(ctx):
    handle = ctx.api.CreateFileW("/logs/k32.log", "rw", 1)
    assert handle != 0
    ctx.api.CloseHandle(handle)
    assert ctx.api.CreateFileW("/logs/k32.log", "rw", 1) == 0


def test_open_always_disposition(ctx):
    handle = ctx.api.CreateFileW("/logs/always.log", "a", 4)
    assert handle != 0
    ctx.api.CloseHandle(handle)
    handle = ctx.api.CreateFileW("/logs/always.log", "a", 4)
    assert handle != 0
    ctx.api.CloseHandle(handle)


def test_read_at_eof_is_success_zero(ctx):
    handle = ctx.api.CreateFileW("/site/dir0/small.txt", "r", 3)
    ctx.api.ReadFile(handle, 100)
    ok, buffer, count = ctx.api.ReadFile(handle, 10)
    assert ok and count == 0 and buffer is None
    assert ctx.api.GetLastError() == ERROR_SUCCESS
    ctx.api.CloseHandle(handle)


def test_read_invalid_handle(ctx):
    ok, _buffer, _count = ctx.api.ReadFile(0, 10)
    assert not ok
    assert ctx.api.GetLastError() == ERROR_INVALID_HANDLE


def test_write_file(ctx):
    handle = ctx.api.CreateFileW("/logs/write.log", "rw", 4)
    ok, written = ctx.api.WriteFile(handle, 256)
    assert ok and written == 256
    assert ctx.api.GetFileSize(handle) == 256
    ctx.api.CloseHandle(handle)


def test_write_negative_length(ctx):
    handle = ctx.api.CreateFileW("/logs/neg.log", "rw", 4)
    ok, _written = ctx.api.WriteFile(handle, -1)
    assert not ok
    ctx.api.CloseHandle(handle)


def test_set_file_pointer_methods(ctx):
    handle = ctx.api.CreateFileW("/site/dir0/index.html", "r", 3)
    assert ctx.api.SetFilePointer(handle, 100, 0) == 100   # FILE_BEGIN
    assert ctx.api.SetFilePointer(handle, 50, 1) == 150    # FILE_CURRENT
    assert ctx.api.SetFilePointer(handle, -96, 2) == 4000  # FILE_END
    ctx.api.CloseHandle(handle)


def test_set_file_pointer_invalid(ctx):
    handle = ctx.api.CreateFileW("/site/dir0/index.html", "r", 3)
    assert ctx.api.SetFilePointer(handle, -10, 0) == -1
    assert ctx.api.SetFilePointer(handle, 0, 7) == -1
    assert ctx.api.SetFilePointer(0, 0, 0) == -1
    ctx.api.CloseHandle(handle)


def test_get_file_size(ctx):
    handle = ctx.api.CreateFileW("/site/dir0/index.html", "r", 3)
    assert ctx.api.GetFileSize(handle) == 4096
    ctx.api.CloseHandle(handle)
    assert ctx.api.GetFileSize(0) == -1


def test_get_long_path_name(ctx):
    length, path = ctx.api.GetLongPathNameW("site//dir0//index.html")
    assert path == "/site/dir0/index.html"
    assert length == len(path)
    length, path = ctx.api.GetLongPathNameW("/site/dir0/none")
    assert length == 0


def test_delete_file(ctx):
    handle = ctx.api.CreateFileW("/logs/dead.log", "rw", 1)
    ctx.api.CloseHandle(handle)
    assert ctx.api.DeleteFileW("/logs/dead.log")
    assert not ctx.api.DeleteFileW("/logs/dead.log")


def test_close_invalid_handle(ctx):
    assert not ctx.api.CloseHandle(0)
    assert ctx.api.GetLastError() == ERROR_INVALID_HANDLE


def test_set_and_get_last_error(ctx):
    ctx.api.SetLastError(1234)
    assert ctx.api.GetLastError() == 1234


def test_win32_layer_forwards_to_ntdll(os_instance):
    """ReadFile must produce NtReadFile traffic (the Table 2 pairing)."""
    from repro.profiling.tracer import ApiCallTracer

    vfs = os_instance.kernel.vfs
    vfs.mkdir("/d", parents=True)
    vfs.create_file("/d/f", size=100)
    tracer = ApiCallTracer()
    os_instance.attach_tracer(tracer)
    ctx = os_instance.new_process()
    handle = ctx.api.CreateFileW("/d/f", "r", 3)
    ctx.api.ReadFile(handle, 50)
    ctx.api.CloseHandle(handle)
    counts = dict(tracer.counts)
    assert counts[("Kernel32", "ReadFile")] == 1
    assert counts[("Ntdll", "NtReadFile")] == 1
    assert counts[("Ntdll", "NtClose")] == 1
