"""Unit and property tests for the heap engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ossim.heap import SimHeap
from repro.sim.errors import SimSegfault


def test_allocate_returns_distinct_addresses():
    heap = SimHeap()
    a = heap.allocate(100)
    b = heap.allocate(100)
    assert a != 0 and b != 0 and a != b


def test_free_and_reuse_same_size():
    heap = SimHeap()
    a = heap.allocate(128)
    assert heap.free(a)
    b = heap.allocate(128)
    assert b == a  # free list reuse keeps addresses deterministic


def test_live_bytes_tracks_allocations():
    heap = SimHeap()
    a = heap.allocate(100)  # rounds to 112? (16-alignment)
    assert heap.live_bytes > 0
    heap.free(a)
    assert heap.live_bytes == 0


def test_block_size_of_live_block():
    heap = SimHeap()
    a = heap.allocate(100)
    assert heap.block_size(a) >= 100
    heap.free(a)
    assert heap.block_size(a) == -1


def test_block_size_unknown_address():
    assert SimHeap().block_size(0xDEAD) == -1


def test_commit_limit_enforced():
    heap = SimHeap(commit_limit=1024)
    assert heap.allocate(512) != 0
    assert heap.allocate(2048) == 0
    assert heap.failed_allocs == 1


def test_free_unknown_address_corrupts():
    heap = SimHeap()
    assert not heap.free(0xBAD)
    assert heap.corruption_score == 1
    assert not heap.validate()


def test_double_free_corrupts():
    heap = SimHeap()
    a = heap.allocate(64)
    assert heap.free(a)
    assert not heap.free(a)
    assert heap.corruption_score == 1


def test_corruption_blast_radius_is_deterministic():
    """After corruption, exactly every Nth heap op segfaults."""
    heap = SimHeap(corruption_blast_radius=3)
    heap.mark_corrupted("test")
    survived = 0
    with pytest.raises(SimSegfault):
        for _ in range(10):
            heap.allocate(16)
            survived += 1
    assert survived == 2  # ops 1, 2 fine; op 3 blows up


def test_healthy_heap_never_segfaults():
    heap = SimHeap()
    for _ in range(500):
        address = heap.allocate(32)
        assert address != 0
        assert heap.free(address)
    assert heap.validate()


def test_negative_allocation_corrupts_and_fails():
    heap = SimHeap()
    assert heap.allocate(-5) == 0
    assert heap.corruption_score == 1


def test_zeroed_flag():
    heap = SimHeap()
    a = heap.allocate(64)
    assert not heap.is_zeroed(a)
    heap.set_zeroed(a)
    assert heap.is_zeroed(a)
    heap.free(a)
    b = heap.allocate(64)
    assert b == a
    assert not heap.is_zeroed(b)  # recycled blocks lose the flag


def test_stats_shape():
    heap = SimHeap()
    a = heap.allocate(64)
    heap.free(a)
    stats = heap.stats()
    assert stats["alloc_count"] == 1
    assert stats["free_count"] == 1
    assert stats["live_blocks"] == 0
    assert stats["corruption_score"] == 0
    assert stats["peak_bytes"] >= 64


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=1, max_value=4096),
                min_size=1, max_size=60))
def test_property_alloc_free_conserves_live_bytes(sizes):
    """Allocating then freeing everything returns live_bytes to zero."""
    heap = SimHeap()
    addresses = [heap.allocate(size) for size in sizes]
    assert all(address != 0 for address in addresses)
    assert heap.live_blocks() == len(sizes)
    for address in addresses:
        assert heap.free(address)
    assert heap.live_bytes == 0
    assert heap.live_blocks() == 0
    assert heap.validate()


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=1, max_value=2048),
                min_size=2, max_size=40), st.data())
def test_property_interleaved_alloc_free_never_corrupts(sizes, data):
    """Any interleaving of valid allocs/frees keeps the heap healthy."""
    heap = SimHeap()
    live = []
    for size in sizes:
        if live and data.draw(st.booleans()):
            victim = live.pop(data.draw(
                st.integers(min_value=0, max_value=len(live) - 1)
            ))
            assert heap.free(victim)
        address = heap.allocate(size)
        assert address != 0
        assert address not in live
        live.append(address)
    assert heap.validate()
    assert heap.live_blocks() == len(live)
