"""Unit tests for critical sections — the hang machinery."""

import pytest

from repro.ossim.sync import CriticalSection, SyncRegistry
from repro.sim.errors import SimBlockedForever, SimSegfault


def test_enter_leave_cycle():
    cs = CriticalSection("log")
    cs.enter("t1")
    assert cs.held() and cs.owner == "t1"
    assert cs.leave("t1")
    assert not cs.held()


def test_recursive_enter_same_thread():
    cs = CriticalSection("log")
    cs.enter("t1")
    cs.enter("t1")
    assert cs.recursion == 2
    cs.leave("t1")
    assert cs.held()
    cs.leave("t1")
    assert not cs.held()


def test_enter_leaked_section_blocks_forever():
    """The signature failure mode: a lock held by another (gone) thread."""
    cs = CriticalSection("log")
    cs.enter("t1")
    with pytest.raises(SimBlockedForever):
        cs.enter("t2")


def test_leave_not_owner_corrupts():
    cs = CriticalSection("log")
    cs.enter("t1")
    assert not cs.leave("t2")
    assert cs.corrupted


def test_leave_never_entered_corrupts():
    cs = CriticalSection("log")
    assert not cs.leave("t1")
    assert cs.corrupted


def test_corrupted_section_segfaults_on_enter():
    cs = CriticalSection("log")
    cs.leave("t1")  # corrupts
    with pytest.raises(SimSegfault):
        cs.enter("t1")


def test_force_release_steals_from_dead_thread():
    cs = CriticalSection("log")
    cs.enter("dead-thread")
    assert cs.force_release("dead-thread")
    assert not cs.held()
    cs.enter("t2")  # now acquirable again


def test_force_release_wrong_owner_noop():
    cs = CriticalSection("log")
    cs.enter("t1")
    assert not cs.force_release("t2")
    assert cs.owner == "t1"


def test_registry_get_creates_once():
    registry = SyncRegistry()
    a = registry.get("apache.log")
    b = registry.get("apache.log")
    assert a is b
    assert registry.get("other") is not a


def test_registry_leaked_sections():
    registry = SyncRegistry()
    registry.get("a").enter("t1")
    registry.get("b")
    assert [s.name for s in registry.leaked_sections()] == ["a"]


def test_registry_release_thread():
    registry = SyncRegistry()
    registry.get("a").enter("t1")
    registry.get("b").enter("t1")
    registry.get("c").enter("t2")
    assert registry.release_thread("t1") == 2
    assert [s.name for s in registry.leaked_sections()] == ["c"]


def test_enter_counts():
    cs = CriticalSection("x")
    cs.enter("t")
    cs.leave("t")
    cs.enter("t")
    cs.leave("t")
    assert cs.enter_count == 2
    assert cs.leave_count == 2
