"""Unit tests for the virtual memory manager."""

import pytest

from repro.ossim.memory import (
    PAGE_NOACCESS,
    PAGE_READONLY,
    PAGE_READWRITE,
    PAGE_SIZE,
    VirtualMemoryManager,
)
from repro.sim.errors import SimSegfault


@pytest.fixture
def vmm():
    return VirtualMemoryManager()


def test_reserve_rounds_to_pages(vmm):
    region = vmm.reserve(100)
    assert region.size == PAGE_SIZE
    region2 = vmm.reserve(PAGE_SIZE + 1)
    assert region2.size == 2 * PAGE_SIZE


def test_regions_do_not_overlap(vmm):
    a = vmm.reserve(PAGE_SIZE)
    b = vmm.reserve(PAGE_SIZE)
    assert a.end <= b.base


def test_find_by_address(vmm):
    region = vmm.reserve(2 * PAGE_SIZE)
    assert vmm.find(region.base) is region
    assert vmm.find(region.base + region.size - 1) is region
    assert vmm.find(region.end) is not region


def test_protect_changes_and_returns_old(vmm):
    region = vmm.reserve(PAGE_SIZE, protection=PAGE_READWRITE)
    old = vmm.protect(region.base, PAGE_SIZE, PAGE_READONLY)
    assert old == PAGE_READWRITE
    assert region.protection == PAGE_READONLY


def test_protect_unmapped_fails(vmm):
    assert vmm.protect(0x1, PAGE_SIZE, PAGE_READONLY) == -1


def test_protect_invalid_protection_fails(vmm):
    region = vmm.reserve(PAGE_SIZE)
    assert vmm.protect(region.base, PAGE_SIZE, 0xFF) == -1


def test_protect_past_region_end_fails(vmm):
    region = vmm.reserve(PAGE_SIZE)
    assert vmm.protect(region.base, 3 * PAGE_SIZE, PAGE_READONLY) == -1


def test_query(vmm):
    region = vmm.reserve(PAGE_SIZE, protection=PAGE_READONLY)
    base, size, protection = vmm.query(region.base + 5)
    assert (base, size, protection) == (
        region.base, region.size, PAGE_READONLY
    )
    assert vmm.query(0x3) is None


def test_check_access_unmapped_segfaults(vmm):
    with pytest.raises(SimSegfault):
        vmm.check_access(0x10)


def test_check_access_noaccess_segfaults(vmm):
    region = vmm.reserve(PAGE_SIZE, protection=PAGE_NOACCESS)
    with pytest.raises(SimSegfault):
        vmm.check_access(region.base)


def test_check_access_write_to_readonly_segfaults(vmm):
    region = vmm.reserve(PAGE_SIZE, protection=PAGE_READONLY)
    vmm.check_access(region.base)  # reads fine
    with pytest.raises(SimSegfault):
        vmm.check_access(region.base, write=True)


def test_release(vmm):
    region = vmm.reserve(PAGE_SIZE)
    assert vmm.release(region)
    assert vmm.find(region.base) is None
    assert not vmm.release(region)


def test_call_counters(vmm):
    region = vmm.reserve(PAGE_SIZE)
    vmm.protect(region.base, PAGE_SIZE, PAGE_READWRITE)
    vmm.query(region.base)
    vmm.query(region.base)
    assert vmm.protect_calls == 1
    assert vmm.query_calls == 2
