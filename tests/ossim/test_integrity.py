"""Tests for the state-integrity auditor (DESIGN.md §10).

Two halves: seeded-corruption checks (each audit domain must catch the
damage it owns) and the false-positive guard (a faultless machine must
audit clean for every server × OS build combination).
"""

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.experiment import WebServerExperiment
from repro.ossim.context import SimKernel
from repro.ossim.integrity import IntegrityAuditor
from repro.ossim.objects import FileObject, KernelObject
from repro.webservers.registry import server_names


# ----------------------------------------------------------------------
# Seeded corruption, one test per audit domain
# ----------------------------------------------------------------------
@pytest.fixture
def world():
    kernel = SimKernel()
    kernel.vfs.mkdir("/data", parents=True)
    kernel.vfs.create_file("/data/a.txt", size=100)
    ctx = kernel.new_process(name="victim")
    ctx.record_startup_footprint()
    auditor = IntegrityAuditor(kernel)
    auditor.snapshot(ctx)
    return kernel, ctx, auditor


def kinds_of(report):
    return report.kinds()


def test_clean_world_audits_clean(world):
    _kernel, ctx, auditor = world
    report = auditor.audit(ctx, live_threads={f"{ctx.pid}:main"})
    assert report.clean
    assert report.to_dict()["violations"] == []


def test_heap_leak_detected(world):
    _kernel, ctx, auditor = world
    ctx.heap.allocate(256)
    report = auditor.audit(ctx)
    assert kinds_of(report) == ["heap-leak"]


def test_heap_foreign_free_detected(world):
    _kernel, ctx, auditor = world
    address = ctx.heap.allocate(64)
    ctx.record_startup_footprint()
    auditor.snapshot(ctx)
    ctx.heap.free(address)
    report = auditor.audit(ctx)
    assert kinds_of(report) == ["heap-foreign-free"]


def test_heap_corruption_detected(world):
    _kernel, ctx, auditor = world
    ctx.heap.mark_corrupted("double free of block")
    report = auditor.audit(ctx)
    assert "heap-corruption" in kinds_of(report)


def test_dangling_handle_detected(world):
    _kernel, ctx, auditor = world
    obj = KernelObject(name="stale-event")
    handle = ctx.handles.insert(obj)
    assert handle
    obj.dereference()  # last reference gone -> closed, handle remains
    report = auditor.audit(ctx)
    assert "dangling-handle" in kinds_of(report)


def test_refcount_underflow_detected(world):
    _kernel, ctx, auditor = world
    obj = KernelObject(name="broken-refs")
    ctx.handles.insert(obj)
    obj.ref_count = 0  # alive but with an impossible count
    report = auditor.audit(ctx)
    assert "refcount-underflow" in kinds_of(report)


def test_vfs_orphaned_open_detected(world):
    kernel, ctx, auditor = world
    node = kernel.vfs.lookup("/data/a.txt")
    node.open_count += 1  # an open nobody holds a handle for
    report = auditor.audit(ctx)
    assert kinds_of(report) == ["vfs-orphan"]


def test_handle_backed_open_is_not_an_orphan(world):
    kernel, ctx, auditor = world
    node = kernel.vfs.lookup("/data/a.txt")
    handle = ctx.handles.insert(FileObject(node))
    node.open_count += 1
    report = auditor.audit(ctx)
    assert report.clean
    ctx.handles.close(handle)
    report = auditor.audit(ctx)
    assert report.clean


def test_fileset_damage_detected(world):
    kernel, ctx, auditor = world
    kernel.vfs.delete("/data/a.txt")
    kernel.vfs.create_file("/data/stray.bin", size=8)
    report = auditor.audit(ctx)
    assert kinds_of(report) == ["fileset-missing", "vfs-stray"]


def test_mutable_prefix_content_changes_tolerated():
    kernel = SimKernel()
    kernel.vfs.mkdir("/logs", parents=True)
    kernel.vfs.create_file("/logs/access.log", size=10)
    ctx = kernel.new_process()
    ctx.record_startup_footprint()
    auditor = IntegrityAuditor(kernel, mutable_prefixes=("/logs",))
    auditor.snapshot(ctx)
    node = kernel.vfs.lookup("/logs/access.log")
    node.size = 999
    assert auditor.audit(ctx).clean
    kernel.vfs.delete("/logs/access.log")
    report = auditor.audit(ctx)
    assert kinds_of(report) == ["fileset-missing"]  # existence still audited


def test_dead_owner_lock_detected(world):
    _kernel, ctx, auditor = world
    section = ctx.sync.get("cache-lock")
    section.enter(f"{ctx.pid}:worker1")
    report = auditor.audit(ctx, live_threads={f"{ctx.pid}:main"})
    assert kinds_of(report) == ["dead-owner-lock"]
    detail = report.violations[0].detail
    assert "worker1" in detail
    assert str(ctx.pid) not in detail  # pids never leak into records


def test_leaked_lock_with_live_owner_detected(world):
    _kernel, ctx, auditor = world
    owner = f"{ctx.pid}:worker1"
    ctx.sync.get("cache-lock").enter(owner)
    report = auditor.audit(ctx, live_threads={owner})
    assert kinds_of(report) == ["leaked-lock"]


def test_lock_corruption_detected(world):
    _kernel, ctx, auditor = world
    section = ctx.sync.get("cache-lock")
    section.corrupted = True
    report = auditor.audit(ctx)
    assert kinds_of(report) == ["lock-corrupted"]


def test_process_restart_rebases_reference(world):
    kernel, ctx, auditor = world
    ctx.heap.allocate(128)  # damage the old generation
    ctx.terminate()
    fresh = kernel.new_process(name="victim")
    fresh.record_startup_footprint()
    report = auditor.audit(fresh)
    assert report.clean
    assert report.reference_reset


def test_dead_process_skips_process_domains(world):
    _kernel, ctx, auditor = world
    ctx.heap.allocate(128)
    ctx.terminate()
    report = auditor.audit(ctx)
    assert not report.process_audited
    assert report.clean  # machine-level VFS state is still intact


def test_report_is_deterministic(world):
    kernel, ctx, auditor = world
    ctx.heap.allocate(64)
    kernel.vfs.delete("/data/a.txt")
    ctx.sync.get("lock-b").enter("99:dead")
    ctx.sync.get("lock-a").enter("98:dead")
    first = auditor.audit(ctx).to_dict()
    second = auditor.audit(ctx).to_dict()
    first.pop("sim_time"), second.pop("sim_time")
    assert first == second
    subjects = [v["subject"] for v in first["violations"]
                if v["domain"] == "sync"]
    assert subjects == sorted(subjects)


# ----------------------------------------------------------------------
# False-positive guard: every server × build audits clean without faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize("os_codename", ["nt50", "nt51"])
@pytest.mark.parametrize("server_name", sorted(server_names()))
def test_faultless_run_has_zero_violations(server_name, os_codename):
    config = ExperimentConfig.smoke()
    config.server_name = server_name
    config.os_codename = os_codename
    config.fault_sample = 4
    config.inject_faults = False  # full slot protocol, no code swapped
    experiment = WebServerExperiment(config)
    faultload = experiment.prepared_faultload()
    run = experiment.run_slots(faultload, iteration=1)
    assert run.integrity_enabled
    assert run.audits_performed == 4
    assert run.contaminated_slots == []
    assert run.reboots == []
