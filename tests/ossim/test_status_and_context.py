"""Tests for status codes and process context lifecycle."""

from repro.ossim.builds import NT50
from repro.ossim.context import ProcessContext, SimKernel
from repro.ossim.dispatch import OsInstance
from repro.ossim.status import NtStatus, nt_success


def test_success_helpers():
    assert nt_success(NtStatus.SUCCESS)
    assert nt_success(NtStatus.PENDING)
    assert not nt_success(NtStatus.INVALID_HANDLE)
    assert NtStatus.SUCCESS.is_success()
    assert NtStatus.ACCESS_DENIED.is_error()
    assert not NtStatus.PENDING.is_error()


def test_status_values_match_nt():
    assert int(NtStatus.SUCCESS) == 0
    assert int(NtStatus.ACCESS_VIOLATION) == 0xC0000005
    assert int(NtStatus.INVALID_HANDLE) == 0xC0000008
    assert int(NtStatus.HEAP_CORRUPTION) == 0xC0000374


def test_process_ids_unique():
    kernel = SimKernel()
    a = kernel.new_process()
    b = kernel.new_process()
    assert a.pid != b.pid
    assert kernel.processes_created == 2


def test_process_state_isolated():
    kernel = SimKernel()
    a = kernel.new_process()
    b = kernel.new_process()
    address = a.heap.allocate(100)
    assert b.heap.block_size(address) == -1
    a.sync.get("x").enter(a.current_thread)
    assert not b.sync.get("x").held()


def test_processes_share_kernel_vfs():
    kernel = SimKernel()
    kernel.vfs.mkdir("/shared", parents=True)
    a = kernel.new_process()
    b = kernel.new_process()
    assert a.vfs is b.vfs


def test_arena_reserved_at_birth():
    ctx = SimKernel().new_process()
    assert ctx.arena is not None
    assert ctx.vmem.find(ctx.arena.base) is ctx.arena


def test_thread_died_releases_locks():
    ctx = SimKernel().new_process()
    ctx.set_thread("w1")
    ctx.sync.get("a").enter("w1")
    ctx.sync.get("b").enter("w1")
    assert ctx.thread_died("w1") == 2
    assert ctx.sync.leaked_sections() == []


def test_terminate_closes_handles():
    osi = OsInstance(NT50, SimKernel())
    osi.kernel.vfs.mkdir("/d", parents=True)
    osi.kernel.vfs.create_file("/d/f", size=10)
    ctx = osi.new_process()
    handle = ctx.api.CreateFileW("/d/f", "r", 3)
    assert handle != 0
    ctx.terminate()
    assert len(ctx.handles) == 0
    assert ctx.terminated
    ctx.terminate()  # idempotent


def test_health_report_shape():
    ctx = SimKernel().new_process()
    report = ctx.health_report()
    assert set(report) == {
        "pid", "heap", "open_handles", "leaked_sections",
        "api_calls", "terminated",
    }


def test_time_source_wiring():
    kernel = SimKernel(time_source=lambda: 2.5)
    osi = OsInstance(NT50, kernel)
    ctx = osi.new_process()
    _status, ticks = ctx.api.NtQuerySystemTime()
    assert ticks == 25_000_000  # 2.5 s in 100 ns units
