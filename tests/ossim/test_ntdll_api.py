"""Contract tests for the ntdll-like API (both builds via the ctx fixture)."""

import pytest

from repro.ossim.status import NtStatus
from repro.ossim.strings import UnicodeString, ansi_view, unicode_view


def _nt_path(ctx, dos_path):
    status, nt_path = ctx.api.RtlDosPathNameToNtPathName_U(dos_path)
    assert status == NtStatus.SUCCESS
    return nt_path


# ----------------------------------------------------------------------
# Strings
# ----------------------------------------------------------------------

def test_init_unicode_string(ctx):
    dest = UnicodeString()
    assert ctx.api.RtlInitUnicodeString(dest, "abc") == NtStatus.SUCCESS
    assert dest.text() == "abc"
    assert dest.consistent()


def test_init_unicode_string_none_source(ctx):
    dest = unicode_view("old")
    ctx.api.RtlInitUnicodeString(dest, None)
    assert dest.text() == ""


def test_init_unicode_string_none_dest(ctx):
    assert (
        ctx.api.RtlInitUnicodeString(None, "x")
        == NtStatus.INVALID_PARAMETER
    )


def test_unicode_to_multibyte_roundtrip(ctx):
    source = unicode_view("hello.html")
    status, ansi, written = ctx.api.RtlUnicodeToMultiByteN(source, 64)
    assert status == NtStatus.SUCCESS
    assert written == 10
    assert ansi.text() == "hello.html"


def test_unicode_to_multibyte_truncates(ctx):
    source = unicode_view("hello")
    status, ansi, written = ctx.api.RtlUnicodeToMultiByteN(source, 3)
    assert status == NtStatus.BUFFER_TOO_SMALL
    assert written == 3
    assert ansi.text() == "hel"


def test_multibyte_to_unicode(ctx):
    source = ansi_view("abc")
    status, wide, chars = ctx.api.RtlMultiByteToUnicodeN(source, 16)
    assert status == NtStatus.SUCCESS
    assert chars == 3
    assert wide.text() == "abc"


def test_conversion_invalid_parameters(ctx):
    status, _result, _n = ctx.api.RtlUnicodeToMultiByteN(None, 10)
    assert status == NtStatus.INVALID_PARAMETER
    status, _result, _n = ctx.api.RtlMultiByteToUnicodeN(
        ansi_view("x"), -1
    )
    assert status == NtStatus.INVALID_PARAMETER


# ----------------------------------------------------------------------
# Path translation
# ----------------------------------------------------------------------

def test_dos_path_translation_normalizes(ctx):
    nt_path = _nt_path(ctx, "C:\\Site\\dir0\\INDEX.HTML")
    assert nt_path.text() == "/site/dir0/index.html"
    ctx.api.RtlFreeUnicodeString(nt_path)


def test_dos_path_allocates_from_heap(ctx):
    before = ctx.heap.live_blocks()
    nt_path = _nt_path(ctx, "/site/dir0/index.html")
    assert ctx.heap.live_blocks() == before + 1
    ctx.api.RtlFreeUnicodeString(nt_path)
    assert ctx.heap.live_blocks() == before


def test_dos_path_dotdot_resolution(ctx):
    nt_path = _nt_path(ctx, "/site/other/../dir0/./index.html")
    assert nt_path.text() == "/site/dir0/index.html"
    ctx.api.RtlFreeUnicodeString(nt_path)


def test_dos_path_rejects_illegal_chars(ctx):
    status, result = ctx.api.RtlDosPathNameToNtPathName_U("/site/a<b")
    assert status == NtStatus.OBJECT_NAME_NOT_FOUND
    assert result is None


def test_dos_path_rejects_empty_and_none(ctx):
    assert ctx.api.RtlDosPathNameToNtPathName_U("")[0] == (
        NtStatus.OBJECT_PATH_NOT_FOUND
    )
    assert ctx.api.RtlDosPathNameToNtPathName_U(None)[0] == (
        NtStatus.INVALID_PARAMETER
    )


def test_dos_path_rejects_overlong(ctx):
    status, _ = ctx.api.RtlDosPathNameToNtPathName_U("/a" * 200)
    assert status == NtStatus.OBJECT_PATH_NOT_FOUND


def test_get_full_path_name(ctx):
    length, full = ctx.api.RtlGetFullPathName_U("site//dir0/index.html")
    assert full == "/site/dir0/index.html"
    assert length == len(full)


# ----------------------------------------------------------------------
# Heap
# ----------------------------------------------------------------------

def test_heap_alloc_free(ctx):
    address = ctx.api.RtlAllocateHeap(256, 0)
    assert address != 0
    assert ctx.api.RtlSizeHeap(address) >= 256
    assert ctx.api.RtlFreeHeap(address)


def test_heap_zero_memory_flag(ctx):
    address = ctx.api.RtlAllocateHeap(64, 0x08)
    assert ctx.heap.is_zeroed(address)
    ctx.api.RtlFreeHeap(address)


def test_heap_rejects_bad_sizes(ctx):
    assert ctx.api.RtlAllocateHeap(-1, 0) == 0
    assert ctx.api.RtlAllocateHeap(32 * 1024 * 1024, 0) == 0


def test_heap_free_null_is_false(ctx):
    assert not ctx.api.RtlFreeHeap(0)


def test_heap_size_of_invalid(ctx):
    assert ctx.api.RtlSizeHeap(0) == -1
    assert ctx.api.RtlSizeHeap(0xDEAD) == -1


# ----------------------------------------------------------------------
# Critical sections
# ----------------------------------------------------------------------

def test_critical_section_cycle(ctx):
    assert ctx.api.RtlEnterCriticalSection("cs") == NtStatus.SUCCESS
    assert ctx.api.RtlLeaveCriticalSection("cs") == NtStatus.SUCCESS


def test_critical_section_bad_leave_reports(ctx):
    assert ctx.api.RtlLeaveCriticalSection("never") == (
        NtStatus.INVALID_PARAMETER
    )


def test_critical_section_none_name(ctx):
    assert ctx.api.RtlEnterCriticalSection(None) == (
        NtStatus.INVALID_PARAMETER
    )


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------

def test_open_read_close(ctx):
    nt_path = _nt_path(ctx, "/site/dir0/index.html")
    status, handle = ctx.api.NtOpenFile(nt_path, "r")
    assert status == NtStatus.SUCCESS and handle != 0
    status, buffer, count = ctx.api.NtReadFile(handle, 1000)
    assert status == NtStatus.SUCCESS and count == 1000
    assert buffer.length == 1000
    assert ctx.api.NtClose(handle) == NtStatus.SUCCESS
    ctx.api.RtlFreeUnicodeString(nt_path)


def test_read_advances_cursor(ctx):
    nt_path = _nt_path(ctx, "/site/dir0/index.html")
    _status, handle = ctx.api.NtOpenFile(nt_path, "r")
    ctx.api.NtReadFile(handle, 4000)
    status, _buffer, count = ctx.api.NtReadFile(handle, 1000)
    assert status == NtStatus.SUCCESS
    assert count == 96  # 4096-byte file
    status, _buffer, _count = ctx.api.NtReadFile(handle, 10)
    assert status == NtStatus.END_OF_FILE
    ctx.api.NtClose(handle)


def test_read_at_explicit_offset_does_not_move_cursor(ctx):
    nt_path = _nt_path(ctx, "/site/dir0/index.html")
    _status, handle = ctx.api.NtOpenFile(nt_path, "r")
    ctx.api.NtReadFile(handle, 100, 500)
    status, info = ctx.api.NtQueryInformationFile(handle)
    assert info["position"] == 0
    ctx.api.NtClose(handle)


def test_open_missing_file(ctx):
    nt_path = _nt_path(ctx, "/site/dir0/nope.html")
    status, handle = ctx.api.NtOpenFile(nt_path, "r")
    assert status == NtStatus.OBJECT_NAME_NOT_FOUND
    assert handle == 0


def test_open_directory_rejected(ctx):
    nt_path = _nt_path(ctx, "/site/dir0")
    status, _handle = ctx.api.NtOpenFile(nt_path, "r")
    assert status == NtStatus.FILE_IS_A_DIRECTORY


def test_create_new_file_and_collision(ctx):
    nt_path = _nt_path(ctx, "/logs/new.log")
    status, handle = ctx.api.NtCreateFile(nt_path, "rw", 2)
    assert status == NtStatus.SUCCESS
    ctx.api.NtClose(handle)
    status, _handle = ctx.api.NtCreateFile(nt_path, "rw", 2)
    assert status == NtStatus.OBJECT_NAME_COLLISION


def test_open_if_creates_when_missing(ctx):
    nt_path = _nt_path(ctx, "/logs/either.log")
    status, handle = ctx.api.NtCreateFile(nt_path, "rw", 3)
    assert status == NtStatus.SUCCESS
    ctx.api.NtClose(handle)
    status, handle = ctx.api.NtCreateFile(nt_path, "rw", 3)
    assert status == NtStatus.SUCCESS
    ctx.api.NtClose(handle)


def test_create_invalid_parameters(ctx):
    assert ctx.api.NtCreateFile(None, "r", 1)[0] == (
        NtStatus.INVALID_PARAMETER
    )
    nt_path = _nt_path(ctx, "/site/dir0/index.html")
    assert ctx.api.NtCreateFile(nt_path, "", 1)[0] == (
        NtStatus.INVALID_PARAMETER
    )
    assert ctx.api.NtCreateFile(nt_path, "r", 9)[0] == (
        NtStatus.INVALID_PARAMETER
    )


def test_write_requires_write_access(ctx):
    nt_path = _nt_path(ctx, "/site/dir0/index.html")
    _status, handle = ctx.api.NtOpenFile(nt_path, "r")
    status, _written = ctx.api.NtWriteFile(handle, 10)
    assert status == NtStatus.ACCESS_DENIED
    ctx.api.NtClose(handle)


def test_write_appends_via_cursor(ctx):
    nt_path = _nt_path(ctx, "/logs/w.log")
    _status, handle = ctx.api.NtCreateFile(nt_path, "rw", 2)
    status, written = ctx.api.NtWriteFile(handle, 100)
    assert status == NtStatus.SUCCESS and written == 100
    status, written = ctx.api.NtWriteFile(handle, 50)
    assert status == NtStatus.SUCCESS
    _status, info = ctx.api.NtQueryInformationFile(handle)
    assert info["size"] == 150
    ctx.api.NtClose(handle)


def test_read_requires_read_access(ctx):
    nt_path = _nt_path(ctx, "/logs/wo.log")
    _status, handle = ctx.api.NtCreateFile(nt_path, "w", 2)
    status, _buffer, _count = ctx.api.NtReadFile(handle, 1)
    assert status == NtStatus.ACCESS_DENIED
    ctx.api.NtClose(handle)


def test_invalid_handle_paths(ctx):
    assert ctx.api.NtClose(0) == NtStatus.INVALID_HANDLE
    assert ctx.api.NtClose(999) == NtStatus.INVALID_HANDLE
    assert ctx.api.NtReadFile(999, 10)[0] == NtStatus.INVALID_HANDLE
    assert ctx.api.NtWriteFile(999, 10)[0] == NtStatus.INVALID_HANDLE
    assert ctx.api.NtQueryInformationFile(999)[0] == (
        NtStatus.INVALID_HANDLE
    )
    assert ctx.api.NtSetInformationFile(999, 0) == (
        NtStatus.INVALID_HANDLE
    )


def test_set_information_moves_cursor(ctx):
    nt_path = _nt_path(ctx, "/site/dir0/index.html")
    _status, handle = ctx.api.NtOpenFile(nt_path, "r")
    assert ctx.api.NtSetInformationFile(handle, 4000) == NtStatus.SUCCESS
    _status, _buffer, count = ctx.api.NtReadFile(handle, 1000)
    assert count == 96
    assert ctx.api.NtSetInformationFile(handle, -1) == (
        NtStatus.INVALID_PARAMETER
    )
    ctx.api.NtClose(handle)


def test_double_close_rejected(ctx):
    nt_path = _nt_path(ctx, "/site/dir0/index.html")
    _status, handle = ctx.api.NtOpenFile(nt_path, "r")
    assert ctx.api.NtClose(handle) == NtStatus.SUCCESS
    assert ctx.api.NtClose(handle) == NtStatus.INVALID_HANDLE


# ----------------------------------------------------------------------
# Virtual memory
# ----------------------------------------------------------------------

def test_query_and_protect_arena(ctx):
    base = ctx.arena.base
    status, info = ctx.api.NtQueryVirtualMemory(base)
    assert status == NtStatus.SUCCESS
    assert info[0] == base
    status, old = ctx.api.NtProtectVirtualMemory(base, 4096, 0x02)
    assert status == NtStatus.SUCCESS
    assert old == 0x04  # PAGE_READWRITE
    ctx.api.NtProtectVirtualMemory(base, 4096, 0x04)


def test_protect_invalid_inputs(ctx):
    assert ctx.api.NtProtectVirtualMemory(0, 10, 0x02)[0] == (
        NtStatus.INVALID_PARAMETER
    )
    assert ctx.api.NtProtectVirtualMemory(
        ctx.arena.base, 4096, 0x77
    )[0] == NtStatus.INVALID_PARAMETER


def test_query_unmapped(ctx):
    assert ctx.api.NtQueryVirtualMemory(3)[0] == (
        NtStatus.INVALID_PARAMETER
    )


# ----------------------------------------------------------------------
# Misc services
# ----------------------------------------------------------------------

def test_delay_execution_charges(ctx):
    before = ctx.cpu.total_cycles
    assert ctx.api.NtDelayExecution(4000) == NtStatus.SUCCESS
    assert ctx.cpu.total_cycles > before
    assert ctx.api.NtDelayExecution(-1) == NtStatus.INVALID_PARAMETER


def test_query_system_time(ctx):
    status, ticks = ctx.api.NtQuerySystemTime()
    assert status == NtStatus.SUCCESS
    assert ticks == 0  # default time source
