"""Unit tests for the object manager and handle table."""

import pytest

from repro.ossim.objects import FileObject, HandleTable, KernelObject
from repro.ossim.vfs import VirtualFileSystem
from repro.sim.errors import SimSegfault


@pytest.fixture
def node():
    fs = VirtualFileSystem()
    fs.mkdir("/d", parents=True)
    return fs.create_file("/d/f", size=100)


def test_insert_returns_nt_style_handles():
    table = HandleTable()
    a = table.insert(KernelObject("a"))
    b = table.insert(KernelObject("b"))
    assert a == 4
    assert b == 8


def test_resolve_live_handle():
    table = HandleTable()
    obj = KernelObject("x")
    handle = table.insert(obj)
    assert table.resolve(handle) is obj


def test_resolve_invalid_handle():
    table = HandleTable()
    assert table.resolve(1234) is None
    assert table.resolve(0) is None


def test_resolve_type_checked(node):
    table = HandleTable()
    handle = table.insert(FileObject(node))
    assert table.resolve(handle, "File") is not None
    assert table.resolve(handle, "Mutex") is None


def test_close_releases_and_recycles():
    table = HandleTable()
    first = table.insert(KernelObject("a"))
    assert table.close(first)
    assert table.resolve(first) is None
    again = table.insert(KernelObject("b"))
    assert again == first  # slot recycled deterministically


def test_close_invalid_handle_false():
    assert not HandleTable().close(4)


def test_capacity_exhaustion_returns_zero():
    table = HandleTable(capacity=2)
    assert table.insert(KernelObject()) != 0
    assert table.insert(KernelObject()) != 0
    assert table.insert(KernelObject()) == 0


def test_close_all(node):
    table = HandleTable()
    handles = [table.insert(FileObject(node)) for _ in range(3)]
    assert node.open_count == 0  # FileObject alone does not bump it
    table.close_all()
    assert len(table) == 0
    for handle in handles:
        assert table.resolve(handle) is None


def test_file_object_close_decrements_open_count(node):
    table = HandleTable()
    file_object = FileObject(node)
    node.open_count += 1
    handle = table.insert(file_object)
    table.close(handle)
    assert node.open_count == 0
    assert file_object.closed


def test_refcounted_object_survives_one_close():
    table = HandleTable()
    obj = KernelObject("shared")
    obj.reference()
    handle_a = table.insert(obj)
    table.close(handle_a)
    assert not obj.closed
    obj.dereference()
    assert obj.closed


def test_dereference_dead_object_segfaults():
    obj = KernelObject("dead")
    obj.dereference()
    with pytest.raises(SimSegfault):
        obj.dereference()


def test_total_opened_counter():
    table = HandleTable()
    table.insert(KernelObject())
    handle = table.insert(KernelObject())
    table.close(handle)
    table.insert(KernelObject())
    assert table.total_opened == 3


def test_handles_snapshot_sorted():
    table = HandleTable()
    for _ in range(3):
        table.insert(KernelObject())
    assert table.handles() == sorted(table.handles())
