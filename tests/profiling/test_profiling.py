"""Tests for tracing, usage analysis and faultload fine-tuning."""

import pytest

from repro.profiling.finetune import FineTuner, tuned_faultload
from repro.profiling.tracer import ApiCallTracer
from repro.profiling.usage import UsageTable


def _tracer(label, counts):
    tracer = ApiCallTracer(label=label)
    for (module, function), count in counts.items():
        for _ in range(count):
            tracer.record(module, function)
    return tracer


@pytest.fixture
def tracers():
    """Three targets with overlapping but distinct API usage."""
    return {
        "alpha": _tracer("alpha", {
            ("Ntdll", "RtlAllocateHeap"): 50,
            ("Ntdll", "NtReadFile"): 30,
            ("Ntdll", "NtClose"): 19,
            ("Kernel32", "GetTickCount"): 1,   # negligible
        }),
        "beta": _tracer("beta", {
            ("Ntdll", "RtlAllocateHeap"): 40,
            ("Ntdll", "NtReadFile"): 40,
            ("Ntdll", "NtClose"): 10,
            ("Ntdll", "BetaOnlyCall"): 10,     # not used by all
        }),
        "gamma": _tracer("gamma", {
            ("Ntdll", "RtlAllocateHeap"): 60,
            ("Ntdll", "NtReadFile"): 20,
            ("Ntdll", "NtClose"): 15,
            ("Kernel32", "GetTickCount"): 5,
        }),
    }


def test_tracer_percentages():
    tracer = _tracer("x", {("Ntdll", "A"): 75, ("Ntdll", "B"): 25})
    assert tracer.percentage("Ntdll", "A") == 75.0
    assert tracer.percentage("Ntdll", "Missing") == 0.0
    assert tracer.total_calls == 100


def test_tracer_disabled_records_nothing():
    tracer = ApiCallTracer()
    tracer.enabled = False
    tracer.record("Ntdll", "A")
    assert tracer.total_calls == 0


def test_tracer_reset_and_merge():
    a = _tracer("a", {("Ntdll", "X"): 10})
    b = _tracer("b", {("Ntdll", "X"): 5, ("Ntdll", "Y"): 5})
    a.merge(b)
    assert a.counts[("Ntdll", "X")] == 15
    assert a.total_calls == 20
    a.reset()
    assert a.total_calls == 0


def test_usage_table_intersection_rule(tracers):
    table = UsageTable.from_tracers(tracers)
    selected = {row.function for row in table.select_relevant()}
    assert "BetaOnlyCall" not in selected  # beta-only: excluded
    assert "RtlAllocateHeap" in selected
    assert "NtReadFile" in selected


def test_usage_table_negligible_rule(tracers):
    table = UsageTable.from_tracers(tracers)
    selected = {row.function for row in table.select_relevant()}
    # GetTickCount is used by alpha and gamma only; even if it were used
    # by all, its share is negligible.
    assert "GetTickCount" not in selected
    # With an absurdly high threshold nothing survives.
    assert table.selected_function_names(negligible_percent=99.0) == []


def test_usage_table_averages(tracers):
    table = UsageTable.from_tracers(tracers)
    row = table.row("Ntdll", "RtlAllocateHeap")
    assert row.average() == pytest.approx((50 + 40 + 60) / 3, abs=0.5)
    assert row.used_by_all(["alpha", "beta", "gamma"])


def test_total_call_coverage(tracers):
    table = UsageTable.from_tracers(tracers)
    coverage = table.total_call_coverage()
    assert 80.0 < coverage < 100.0


def test_rows_sorted(tracers):
    table = UsageTable.from_tracers(tracers)
    keys = [(row.module, row.function) for row in table.rows()]
    assert keys == sorted(keys)


def test_tuned_faultload_keeps_helpers():
    """Fine-tuning keeps internal helpers of selected modules."""
    from repro.gswfit.scanner import scan_build
    from repro.ossim.builds import NT50

    raw = scan_build(NT50)
    tuned = tuned_faultload(raw, ["NtReadFile"], NT50)
    functions = set(tuned.functions())
    assert "NtReadFile" in functions
    assert "_resolve_file_handle" in functions  # helper retained
    assert "RtlAllocateHeap" not in functions
    assert "CloseHandle" not in functions  # other module, none selected


def test_fine_tuner_end_to_end(tracers):
    from repro.gswfit.scanner import scan_build
    from repro.ossim.builds import NT50

    tuner = FineTuner(NT50)
    tuner.analyze(tracers)
    selected = tuner.selected_functions()
    assert "RtlAllocateHeap" in selected
    tuned = tuner.tune(scan_build(NT50))
    assert 0 < len(tuned) < len(scan_build(NT50))


def test_fine_tuner_requires_analyze_first():
    from repro.ossim.builds import NT50

    with pytest.raises(RuntimeError):
        FineTuner(NT50).selected_functions()
