"""Tests for the server process runtime: workers, crashes, supervision."""

import pytest

from repro.ossim.builds import NT50
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.sim.errors import (
    CpuBudgetExceeded,
    SimBlockedForever,
    SimSegfault,
)
from repro.sim.kernel import Simulator
from repro.webservers.base import BaseWebServer
from repro.webservers.http import HttpRequest, HttpResponse
from repro.webservers.runtime import RuntimeState, ServerRuntime


class ScriptedServer(BaseWebServer):
    """A server whose handler behavior is scripted per request."""

    name = "scripted"
    worker_count = 2
    self_restart = False
    backlog = 4
    app_overhead_cycles = 1_000_000  # 2.5 ms at the default 400 MHz

    def __init__(self, script=None):
        super().__init__()
        self.script = list(script or [])
        self.handled = 0
        self.startup_should_fail = 0

    def reset_process_state(self):
        super().reset_process_state()

    def startup(self, ctx):
        if self.startup_should_fail > 0:
            self.startup_should_fail -= 1
            from repro.webservers.base import ServerStartupError

            raise ServerStartupError("scripted startup failure")

    def handle(self, ctx, request):
        self.handled += 1
        if self.script:
            action = self.script.pop(0)
            if action == "crash":
                raise SimSegfault("scripted crash")
            if action == "hang":
                raise SimBlockedForever("scripted hang")
            if action == "burn":
                raise CpuBudgetExceeded("scripted cpu burn")
            if action == "typeerror":
                raise TypeError("garbage from the OS")
            if action == "error":
                return HttpResponse.error(500)
        return HttpResponse(200, content_length=100)


class SupervisedServer(ScriptedServer):
    name = "supervised"
    self_restart = True
    restart_delay = 0.2
    max_respawn_burst = 2


def _runtime(server):
    sim = Simulator(seed=1)
    os_instance = OsInstance(NT50, SimKernel())
    runtime = ServerRuntime(server, os_instance, sim)
    assert runtime.start()
    return sim, runtime


def _request(runtime, sim, run=True):
    outcome = []
    runtime.deliver(HttpRequest("GET", "/x"), outcome.append)
    if run:
        sim.run_until(sim.now + 1.0)
    return outcome


def test_normal_request_completes_after_service_time():
    sim, runtime = _runtime(ScriptedServer())
    outcome = []
    runtime.deliver(HttpRequest("GET", "/x"), outcome.append)
    assert outcome == []  # not instantaneous
    sim.run_until(sim.now + 1.0)
    assert outcome[0].ok
    assert runtime.stats.responses_ok == 1
    assert runtime.last_success_time > 0


def test_requests_queue_beyond_worker_count():
    sim, runtime = _runtime(ScriptedServer())
    outcomes = [_request(runtime, sim, run=False) for _ in range(4)]
    assert len(runtime.queue) <= 4
    sim.run_until(sim.now + 2.0)
    assert all(out and out[0].ok for out in outcomes)


def test_backlog_overflow_refused():
    server = ScriptedServer()
    server.app_overhead_cycles = 400_000_000  # 1 s each: queue builds
    sim, runtime = _runtime(server)
    outcomes = [_request(runtime, sim, run=False) for _ in range(12)]
    refused = [out for out in outcomes if out and out[0] is None]
    assert refused, "backlog should have overflowed"
    assert runtime.stats.requests_refused >= len(refused)


def test_crash_kills_unsupervised_server():
    sim, runtime = _runtime(ScriptedServer(script=["crash"]))
    outcome = _request(runtime, sim)
    assert outcome[0] is None  # connection reset
    assert runtime.state is RuntimeState.DEAD
    assert runtime.stats.crashes == 1
    # Subsequent requests refused immediately.
    outcome = _request(runtime, sim)
    assert outcome[0] is None
    assert runtime.stats.requests_refused == 1


def test_crash_aborts_in_flight_requests():
    server = ScriptedServer(script=["ok", "crash"])
    server.app_overhead_cycles = 40_000_000  # 100 ms
    sim, runtime = _runtime(server)
    first = _request(runtime, sim, run=False)   # busy worker
    second = _request(runtime, sim, run=False)  # crashing worker
    sim.run_until(sim.now + 1.0)
    assert first[0] is None  # reset by the crash before completing
    assert second[0] is None


def test_supervised_server_self_restarts():
    sim, runtime = _runtime(SupervisedServer(script=["crash"]))
    _request(runtime, sim)
    assert runtime.state is RuntimeState.RUNNING  # master respawned it
    assert runtime.stats.self_restarts == 1
    outcome = _request(runtime, sim)
    assert outcome[0].ok


def test_supervisor_gives_up_after_burst():
    server = SupervisedServer(script=["crash"])
    sim, runtime = _runtime(server)
    server.startup_should_fail = 99  # every respawn fails
    _request(runtime, sim)
    sim.run_until(sim.now + 5.0)
    assert runtime.state is RuntimeState.DEAD
    assert runtime.stats.startup_failures >= server.max_respawn_burst


def test_hang_parks_worker_and_loses_request():
    sim, runtime = _runtime(ScriptedServer(script=["hang"]))
    outcome = _request(runtime, sim)
    assert outcome == []  # no response at all
    assert runtime.hung_workers() == 1
    assert runtime.state is RuntimeState.RUNNING
    # Remaining worker still serves.
    assert _request(runtime, sim)[0].ok


def test_all_workers_hung_detectable():
    sim, runtime = _runtime(ScriptedServer(script=["hang", "hang"]))
    _request(runtime, sim)
    _request(runtime, sim)
    assert runtime.all_workers_hung()
    # New requests are accepted but never answered.
    outcome = _request(runtime, sim)
    assert outcome == []


def test_restart_resets_hung_requests_with_connection_reset():
    sim, runtime = _runtime(ScriptedServer(script=["hang"]))
    outcome = _request(runtime, sim)
    assert outcome == []
    assert runtime.restart()
    assert outcome[0] is None  # the parked connection got reset
    assert runtime.hung_workers() == 0
    assert runtime.stats.external_restarts == 1


def test_cpu_burn_flags_hog():
    sim, runtime = _runtime(ScriptedServer(script=["burn"]))
    _request(runtime, sim)
    assert runtime.cpu_hog_recent
    assert runtime.stats.cpu_hog_events == 1
    assert runtime.hung_workers() == 1


def test_typeerror_from_garbage_counts_as_crash():
    sim, runtime = _runtime(ScriptedServer(script=["typeerror"]))
    outcome = _request(runtime, sim)
    assert outcome[0] is None
    assert runtime.stats.crashes == 1


def test_error_responses_counted_separately():
    sim, runtime = _runtime(ScriptedServer(script=["error"]))
    outcome = _request(runtime, sim)
    assert outcome[0].status_code == 500
    assert runtime.stats.responses_error == 1
    assert runtime.stats.responses_ok == 0


def test_restart_spawns_fresh_process_state():
    sim, runtime = _runtime(ScriptedServer())
    old_ctx = runtime.ctx
    old_ctx.heap.allocate(1000)
    runtime.restart()
    assert runtime.ctx is not old_ctx
    assert runtime.ctx.heap.live_blocks() == 0


def test_stop_terminates_child():
    sim, runtime = _runtime(ScriptedServer())
    ctx = runtime.ctx
    runtime.stop()
    assert ctx.terminated
    assert runtime.state is RuntimeState.STOPPED


def test_responsive_since():
    sim, runtime = _runtime(ScriptedServer())
    _request(runtime, sim)
    t = runtime.last_success_time
    assert runtime.responsive_since(t - 0.1)
    assert not runtime.responsive_since(t + 0.1)


def test_health_snapshot_keys():
    sim, runtime = _runtime(ScriptedServer())
    snapshot = runtime.health_snapshot()
    assert set(snapshot) == {
        "state", "hung_workers", "queue", "last_success_time",
        "cpu_hog_recent",
    }
