"""Behavioral tests for all four web servers on a pristine OS.

Each server is started on a machine, handed requests directly (no client),
and must serve static files, dynamic content and POSTs correctly on both
OS builds — the zero-fault contract everything else builds on.
"""

import pytest

from repro.ossim.vfs import SimBuffer
from repro.webservers.http import HttpRequest
from repro.webservers.registry import (
    PROFILING_SERVERS,
    create_server,
    server_names,
)


@pytest.fixture
def served_machine(build):
    """A booted machine (parametrized over builds) per server name."""
    from repro.harness.config import ExperimentConfig
    from repro.harness.machine import ServerMachine

    def factory(server_name):
        config = ExperimentConfig.smoke()
        config.server_name = server_name
        config.os_codename = build.codename
        machine = ServerMachine(config)
        assert machine.boot()
        return machine

    return factory


def _serve(machine, request):
    outcome = []
    machine.runtime.deliver(request, outcome.append)
    machine.run_for(2.0)
    assert outcome, "no response delivered"
    return outcome[0]


def test_registry_contents():
    assert set(server_names()) == {"apache", "abyss", "sambar", "savant"}
    with pytest.raises(KeyError):
        create_server("nginx")


@pytest.mark.parametrize("server_name", PROFILING_SERVERS)
def test_static_get_serves_exact_content(served_machine, server_name):
    machine = served_machine(server_name)
    entry = machine.fileset.entry("/dir00000/class1_2")
    response = _serve(machine, HttpRequest("GET", entry.path))
    assert response.status_code == 200
    assert response.content_length == entry.size
    expected = SimBuffer.for_content(entry.content_id, 0, entry.size)
    assert response.buffer == expected


@pytest.mark.parametrize("server_name", PROFILING_SERVERS)
def test_missing_document_404(served_machine, server_name):
    machine = served_machine(server_name)
    response = _serve(machine, HttpRequest("GET", "/dir00000/nope"))
    assert response.status_code == 404


@pytest.mark.parametrize("server_name", PROFILING_SERVERS)
def test_dynamic_get_wraps_content(served_machine, server_name):
    machine = served_machine(server_name)
    entry = machine.fileset.entry("/dir00001/class0_4")
    request = HttpRequest("GET", entry.path, query="gen=1", dynamic=True)
    response = _serve(machine, request)
    assert response.status_code == 200
    assert response.content_length == entry.size + 128


@pytest.mark.parametrize("server_name", PROFILING_SERVERS)
def test_post_accepted_and_logged(served_machine, server_name):
    machine = served_machine(server_name)
    post_log = machine.kernel.vfs.lookup(
        f"/logs/{server_name}_post.log"
    )
    size_before = post_log.size
    response = _serve(
        machine, HttpRequest("POST", "/postlog/form", body_size=300)
    )
    assert response.status_code == 200
    assert post_log.size > size_before


@pytest.mark.parametrize("server_name", PROFILING_SERVERS)
def test_many_requests_leave_server_healthy(served_machine, server_name):
    machine = served_machine(server_name)
    for index in range(40):
        path = f"/dir0000{index % 2}/class1_{index % 9}"
        response = _serve(machine, HttpRequest("GET", path))
        assert response.status_code == 200
    stats = machine.runtime.stats
    assert stats.crashes == 0
    assert stats.hung_worker_events == 0
    assert machine.runtime.hung_workers() == 0
    # No lock leaked, no heap corruption on the pristine path.
    assert machine.runtime.ctx.sync.leaked_sections() == []
    assert machine.runtime.ctx.heap.validate()


def test_apache_handle_cache_limits_opens(served_machine):
    machine = served_machine("apache")
    tracer_counts = {}
    from repro.profiling.tracer import ApiCallTracer

    tracer = ApiCallTracer()
    machine.attach_tracer(tracer)
    entry_path = "/dir00000/class1_1"
    for _ in range(10):
        _serve(machine, HttpRequest("GET", entry_path))
    opens = tracer.counts.get(("Ntdll", "NtCreateFile"), 0)
    assert opens <= 1  # first miss only; cache hits skip the open


def test_abyss_opens_every_request(served_machine):
    machine = served_machine("abyss")
    from repro.profiling.tracer import ApiCallTracer

    tracer = ApiCallTracer()
    machine.attach_tracer(tracer)
    for _ in range(5):
        _serve(machine, HttpRequest("GET", "/dir00000/class1_1"))
    opens = tracer.counts.get(("Ntdll", "NtCreateFile"), 0)
    assert opens == 5


def test_server_configs_differ_architecturally():
    apache = create_server("apache")
    abyss = create_server("abyss")
    assert apache.self_restart and not abyss.self_restart
    assert apache.worker_count > abyss.worker_count


def test_startup_fails_without_config(build):
    from repro.harness.config import ExperimentConfig
    from repro.harness.machine import ServerMachine

    config = ExperimentConfig.smoke()
    config.os_codename = build.codename
    machine = ServerMachine(config)
    machine.setup_environment()
    machine.kernel.vfs.delete("/etc/apache.conf")
    assert not machine.runtime.start()
    assert machine.runtime.stats.startup_failures == 1
