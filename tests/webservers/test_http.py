"""Tests for HTTP message objects."""

from repro.webservers.http import HttpRequest, HttpResponse


def test_request_basics():
    request = HttpRequest("GET", "/dir00000/class1_3")
    assert not request.is_post
    assert not request.dynamic
    assert request.wire_size() > len(request.path)


def test_post_request():
    request = HttpRequest("POST", "/postlog/form", body_size=320)
    assert request.is_post
    assert request.wire_size() >= 320 + 180


def test_dynamic_request_carries_query():
    request = HttpRequest("GET", "/a", query="gen=1", dynamic=True)
    assert request.dynamic
    assert "gen=1" in repr(request)


def test_response_ok_range():
    assert HttpResponse(200).ok
    assert HttpResponse(201).ok
    assert not HttpResponse(404).ok
    assert not HttpResponse(500).ok


def test_response_reason_phrases():
    assert HttpResponse(200).reason == "OK"
    assert HttpResponse(404).reason == "Not Found"
    assert HttpResponse(599).reason == "Unknown"


def test_response_wire_size_includes_headers():
    response = HttpResponse(200, content_length=1000)
    assert response.wire_size() > 1000


def test_error_response_factory():
    response = HttpResponse.error(503, server_name="apache/2.0",
                                  detail="queue full")
    assert response.status_code == 503
    assert not response.ok
    assert response.content_length == 320
    assert response.error_detail == "queue full"
    assert response.buffer is None


def test_negative_content_length_not_counted():
    response = HttpResponse(200, content_length=-5)
    assert response.wire_size() >= 0
