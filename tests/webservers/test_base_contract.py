"""Tests for the BaseWebServer contract helpers."""

import pytest

from repro.webservers.base import BaseWebServer, ServerStartupError


class MinimalServer(BaseWebServer):
    name = "minimal"
    version = "1.0"

    def startup(self, ctx):
        pass

    def handle(self, ctx, request):
        return self.error_response(503)


def test_document_path_mapping():
    server = MinimalServer()
    assert server.document_path("/a/b") == "/site/a/b"
    assert server.document_path("a/b") == "/site/a/b"


def test_derived_paths_from_name():
    server = MinimalServer()
    assert server.config_path == "/etc/minimal.conf"
    assert server.access_log_path == "/logs/minimal_access.log"
    assert server.post_log_path == "/logs/minimal_post.log"


def test_error_response_carries_identity():
    response = MinimalServer().error_response(502, detail="upstream")
    assert response.status_code == 502
    assert response.server_name == "minimal/1.0"
    assert response.error_detail == "upstream"


def test_reset_process_state_clears_counters():
    server = MinimalServer()
    server.requests_served = 99
    server.reset_process_state()
    assert server.requests_served == 0


def test_base_class_requires_overrides():
    base = BaseWebServer()
    with pytest.raises(NotImplementedError):
        base.startup(None)
    with pytest.raises(NotImplementedError):
        base.handle(None, None)


def test_repr_mentions_policy():
    text = repr(MinimalServer())
    assert "minimal" in text
    assert "self_restart" in text
