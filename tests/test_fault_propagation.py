"""Targeted fault-propagation scenarios.

Each test injects one *specific* class of mutant and verifies the causal
chain the benchmark results rest on: lock leaks hang multi-worker servers
but spare single-owner ones, guard removals turn services into
always-fail, lost frees leak until memory pressure shows, wrong-status
mutants surface as client-visible errors, and supervised masters contain
crash faults their unsupervised peers die from.
"""

import pytest

from repro.faults.types import FaultType
from repro.gswfit.injector import FaultInjector
from repro.gswfit.scanner import scan_function
from repro.harness.config import ExperimentConfig
from repro.harness.machine import ServerMachine
from repro.webservers.http import HttpRequest
from repro.webservers.runtime import RuntimeState


def _machine(server_name="apache"):
    config = ExperimentConfig.smoke()
    config.server_name = server_name
    machine = ServerMachine(config)
    assert machine.boot()
    return machine


def _location(module, function_name, fault_type, predicate=None):
    import importlib

    module_object = importlib.import_module(module)
    locations = scan_function(
        getattr(module_object, function_name), display_module="Ntdll"
    )
    for location in locations:
        if location.fault_type is fault_type:
            if predicate is None or predicate(location):
                return location
    raise AssertionError(
        f"no {fault_type.value} site in {function_name}"
    )


def _drive(machine, requests=30, path="/dir00000/class1_2"):
    outcomes = []
    for _ in range(requests):
        out = []
        machine.runtime.deliver(HttpRequest("GET", path), out.append)
        machine.run_for(0.5)
        outcomes.append(out[0] if out else None)
    return outcomes


def _drive_burst(machine, bursts=5, width=8, path="/dir00000/class1_2"):
    """Deliver ``width`` concurrent requests per burst (rotates workers)."""
    outcomes = []
    for _ in range(bursts):
        pending = []
        for _ in range(width):
            out = []
            machine.runtime.deliver(HttpRequest("GET", path), out.append)
            pending.append(out)
        machine.run_for(1.0)
        outcomes.extend(out[0] if out else None for out in pending)
    return outcomes


def test_leave_mutant_hangs_multiworker_server():
    """A no-op RtlLeaveCriticalSection leaks the log lock: the first
    worker keeps recursing happily, every *other* worker blocks forever —
    the mechanism behind Apache's high KNS in Table 5."""
    machine = _machine("apache")
    location = _location(
        "repro.ossim.modules.ntdll50", "RtlLeaveCriticalSection",
        FaultType.MIA,
        predicate=lambda loc: "section_name is None" in loc.description,
    )
    injector = FaultInjector(os_instances=[machine.os_instance])
    with injector.injected(location):
        # Width 5 against 8 workers rotates which worker performs the
        # batched log flush, so a *different* thread eventually runs into
        # the leaked lock.
        _drive_burst(machine, bursts=10, width=5)
    assert machine.runtime.hung_workers() > 0
    assert machine.runtime.state is RuntimeState.RUNNING  # alive, degraded
    leaked = machine.runtime.ctx.sync.leaked_sections()
    assert leaked, "the mutated Leave must have leaked a section"


def test_guard_removal_turns_service_into_always_fail():
    """MIA on NtReadFile's handle guard: every read fails, every GET 500s."""
    machine = _machine("apache")
    location = _location(
        "repro.ossim.modules.ntdll50", "NtReadFile", FaultType.MIA,
        predicate=lambda loc: "file_object is None" in loc.description,
    )
    injector = FaultInjector(os_instances=[machine.os_instance])
    with injector.injected(location):
        outcomes = _drive(machine, requests=10)
    statuses = [o.status_code for o in outcomes if o is not None]
    assert statuses and all(code == 500 for code in statuses)
    # Restored: service is healthy again without any restart.
    outcomes = _drive(machine, requests=5)
    assert all(o is not None and o.ok for o in outcomes)


def test_lost_free_leaks_heap_memory():
    """MIFS removing RtlFreeUnicodeString's release block: every path
    translation leaks its NT-path buffer."""
    machine = _machine("abyss")  # abyss translates paths per request
    location = _location(
        "repro.ossim.modules.ntdll50", "RtlFreeUnicodeString",
        FaultType.MIFS,
        predicate=lambda loc: "heap_address" in loc.description,
    )
    injector = FaultInjector(os_instances=[machine.os_instance])
    ctx = machine.runtime.ctx
    _drive(machine, requests=5)
    before = ctx.heap.live_blocks()
    with injector.injected(location):
        _drive(machine, requests=20)
    leaked = ctx.heap.live_blocks() - before
    assert leaked >= 15, f"expected ~1 leak per request, got {leaked}"


def test_wrong_disposition_constant_changes_semantics():
    """WVAV on CreateFileW's CREATE_NEW translation (1 -> 2): the log
    files the server opens with OPEN_ALWAYS keep working, but opening an
    existing file with CREATE_NEW semantics starts colliding."""
    machine = _machine("abyss")
    from repro.ossim.modules import kernel3250

    locations = scan_function(
        kernel3250.CreateFileW, display_module="Kernel32"
    )
    wvav = [loc for loc in locations
            if loc.fault_type is FaultType.WVAV]
    assert wvav, "CreateFileW must expose WVAV sites"
    injector = FaultInjector(os_instances=[machine.os_instance])
    for location in wvav:
        with injector.injected(location):
            outcomes = _drive(machine, requests=4)
        # Whatever the perturbed constant does, the server must either
        # keep serving or fail loudly — never wedge the harness.
        assert len(outcomes) == 4


def _find_crashing_location():
    """A mutant that reliably crashes the per-request OS path."""
    from repro.gswfit.scanner import scan_build
    from repro.ossim.builds import NT50
    from repro.ossim.context import SimKernel
    from repro.ossim.dispatch import OsInstance
    from repro.sim.errors import SimSegfault

    # SetFilePointer is on every server's request path but on nobody's
    # startup path, so a crash-inducing mutant here lets a supervised
    # master actually respawn its child between request crashes.
    hot = {"SetFilePointer"}
    injector = FaultInjector()
    for location in scan_build(NT50):
        if location.function not in hot:
            continue
        kernel = SimKernel()
        kernel.vfs.mkdir("/d", parents=True)
        kernel.vfs.create_file("/d/f", size=100)
        os_instance = OsInstance(NT50, kernel)
        ctx = os_instance.new_process()
        injector.os_instances = [os_instance]
        with injector.injected(location):
            try:
                for _ in range(3):
                    handle = ctx.api.CreateFileW("/d/f", "r", 3)
                    if handle:
                        ctx.api.SetFilePointer(handle, 0, 2)
                        ctx.api.CloseHandle(handle)
            except SimSegfault:
                return location
            except Exception:
                continue
    raise AssertionError("no crashing mutant found in hot functions")


def test_supervised_master_contains_crash_fault():
    """The same crash-inducing mutant: Apache self-restarts through it,
    Abyss stays dead until repaired — the MIS asymmetry of Table 5."""
    location = _find_crashing_location()

    def crashes_with(server_name):
        machine = _machine(server_name)
        injector = FaultInjector(os_instances=[machine.os_instance])
        with injector.injected(location):
            _drive(machine, requests=8)
            state = machine.runtime.state
            crashes = machine.runtime.stats.crashes
            self_restarts = machine.runtime.stats.self_restarts
        return state, crashes, self_restarts

    apache_state, apache_crashes, apache_restarts = crashes_with("apache")
    abyss_state, abyss_crashes, _ = crashes_with("abyss")
    assert apache_crashes > 0 and abyss_crashes > 0
    assert abyss_state is RuntimeState.DEAD
    assert apache_restarts > 0  # the master did its job at least once


def test_corruption_blast_hits_later_not_instantly():
    """Heap corruption from a bad free crashes a *later* operation —
    the delayed-failure realism the blast-radius machinery provides."""
    machine = _machine("apache")
    ctx = machine.runtime.ctx
    ctx.heap.mark_corrupted("test seed")
    outcomes = _drive(machine, requests=12)
    # Some requests succeed before the blast lands.
    assert any(o is not None and o.ok for o in outcomes)
    assert machine.runtime.stats.crashes >= 1


def test_xp_faultload_does_not_apply_to_w2k():
    """Site keys are per-module: an NT 5.1 location cannot resolve
    against the 5.0 module — faultloads are OS-build specific, as in the
    paper (one faultload per OS)."""
    from repro.gswfit.mutator import MutantError, build_mutant
    from repro.gswfit.scanner import scan_build
    from repro.ossim.builds import NT51

    location_51 = next(
        loc for loc in scan_build(NT51)
        if loc.function == "NtQueryAttributesFile"
    )
    assert "ntdll51" in location_51.module
    hijacked = type(location_51)(
        module="repro.ossim.modules.ntdll50",
        display_module="Ntdll",
        function=location_51.function,
        fault_type=location_51.fault_type,
        site_key=location_51.site_key,
    )
    with pytest.raises(MutantError):
        build_mutant(hijacked)
