"""Unit tests for CPU-cycle accounting."""

import pytest

from repro.sim.cpu import CpuMeter
from repro.sim.errors import CpuBudgetExceeded


def test_charge_accumulates():
    meter = CpuMeter(speed_hz=1000)
    meter.charge(10)
    meter.charge(5)
    assert meter.total_cycles == 15


def test_negative_charge_clamped():
    meter = CpuMeter(speed_hz=1000)
    meter.charge(-50)
    assert meter.total_cycles == 0


def test_invalid_speed_rejected():
    with pytest.raises(ValueError):
        CpuMeter(speed_hz=0)


def test_operation_bracketing_isolates_cycles():
    meter = CpuMeter(speed_hz=1000)
    meter.charge(100)  # outside any operation
    meter.begin_operation()
    meter.charge(30)
    assert meter.end_operation() == 30
    assert meter.total_cycles == 130


def test_begin_operation_resets_counter():
    meter = CpuMeter(speed_hz=1000)
    meter.begin_operation()
    meter.charge(10)
    meter.end_operation()
    meter.begin_operation()
    meter.charge(7)
    assert meter.end_operation() == 7


def test_budget_enforced_within_operation():
    meter = CpuMeter(speed_hz=1000, operation_budget=100)
    meter.begin_operation()
    meter.charge(60)
    with pytest.raises(CpuBudgetExceeded) as exc_info:
        meter.charge(60)
    assert exc_info.value.cycles == 120


def test_budget_not_enforced_outside_operation():
    meter = CpuMeter(speed_hz=1000, operation_budget=10)
    meter.charge(1000)  # no operation in progress: fine


def test_no_budget_means_unlimited():
    meter = CpuMeter(speed_hz=1000, operation_budget=None)
    meter.begin_operation()
    meter.charge(10**9)
    assert meter.end_operation() == 10**9


def test_cycle_time_conversions_roundtrip():
    meter = CpuMeter(speed_hz=2_000_000)
    assert meter.cycles_to_seconds(2_000_000) == 1.0
    assert meter.seconds_to_cycles(0.5) == 1_000_000


def test_fractional_charge_truncated_to_int():
    meter = CpuMeter(speed_hz=1000)
    meter.charge(10.9)
    assert meter.total_cycles == 10
