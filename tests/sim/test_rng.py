"""Unit and property tests for seeded random streams."""

from hypothesis import given, strategies as st

from repro.sim.rng import SeededRng, derive_seed


def test_same_seed_same_stream():
    a = SeededRng(123)
    b = SeededRng(123)
    assert [a.random() for _ in range(10)] == [
        b.random() for _ in range(10)
    ]


def test_different_seeds_differ():
    assert SeededRng(1).random() != SeededRng(2).random()


def test_substream_independent_of_sibling_consumption():
    """Drawing from one substream must not perturb another."""
    parent = SeededRng(99)
    lonely = parent.substream("b").random()

    parent2 = SeededRng(99)
    a = parent2.substream("a")
    for _ in range(100):
        a.random()
    assert parent2.substream("b").random() == lonely


def test_substream_labels_compose():
    root = SeededRng(5, label="root")
    child = root.substream("x", 3)
    assert child.label == "root/x/3"


def test_derive_seed_stable_and_label_sensitive():
    assert derive_seed(10, "a") == derive_seed(10, "a")
    assert derive_seed(10, "a") != derive_seed(10, "b")
    assert derive_seed(10, "a") != derive_seed(11, "a")


def test_derive_seed_order_sensitive():
    assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


@given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
def test_derive_seed_in_range(seed, label):
    value = derive_seed(seed, label)
    assert 0 <= value < 2**63


@given(st.integers(min_value=1, max_value=50))
def test_zipf_index_within_bounds(count):
    rng = SeededRng(7)
    for _ in range(50):
        index = rng.zipf_index(count)
        assert 0 <= index < count


def test_zipf_prefers_low_ranks():
    rng = SeededRng(11)
    draws = [rng.zipf_index(20) for _ in range(3000)]
    low = sum(1 for d in draws if d < 5)
    high = sum(1 for d in draws if d >= 15)
    assert low > high * 2


def test_zipf_invalid_count():
    import pytest

    with pytest.raises(ValueError):
        SeededRng(1).zipf_index(0)


def test_choices_and_sample_deterministic():
    a = SeededRng(4)
    b = SeededRng(4)
    population = list(range(20))
    assert a.choices(population, weights=None, k=5) == b.choices(
        population, weights=None, k=5
    )
    assert a.sample(population, 5) == b.sample(population, 5)


def test_uniform_bounds():
    rng = SeededRng(8)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0
