"""Unit tests for the network link model."""

import pytest

from repro.sim.network import NetworkLink


def test_transfer_time_per_connection_cap():
    link = NetworkLink(
        bandwidth_bps=100_000_000, latency=0.0, per_connection_bps=400_000
    )
    # 50 KB at 400 kbit/s = 1 second.
    assert link.transfer_time(50_000) == pytest.approx(1.0)


def test_latency_added():
    link = NetworkLink(latency=0.01, per_connection_bps=400_000)
    assert link.transfer_time(0) == pytest.approx(0.01)


def test_shared_capacity_divides_among_transfers():
    link = NetworkLink(
        bandwidth_bps=1_000_000, latency=0.0, per_connection_bps=None
    )
    solo = link.effective_rate_bps()
    for _ in range(4):
        link.begin_transfer()
    assert link.effective_rate_bps() == pytest.approx(solo / 4)


def test_cap_binds_before_share_when_lower():
    link = NetworkLink(
        bandwidth_bps=100_000_000, per_connection_bps=400_000
    )
    link.begin_transfer()
    assert link.effective_rate_bps() == 400_000


def test_end_transfer_restores_share():
    link = NetworkLink(bandwidth_bps=1_000_000, per_connection_bps=None)
    link.begin_transfer()
    link.begin_transfer()
    link.end_transfer()
    assert link.active_transfers == 1
    link.end_transfer()
    link.end_transfer()  # extra end is safe
    assert link.active_transfers == 0


def test_request_time_small():
    link = NetworkLink(per_connection_bps=400_000, latency=0.0002)
    t = link.request_time()
    assert 0.0002 < t < 0.05


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        NetworkLink().transfer_time(-1)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        NetworkLink(bandwidth_bps=0)
    with pytest.raises(ValueError):
        NetworkLink(latency=-1.0)


def test_total_bytes_accounted():
    link = NetworkLink()
    link.transfer_time(1000)
    link.transfer_time(2000)
    assert link.total_bytes == 3000
