"""Unit tests for the simulator kernel."""

import pytest

from repro.sim.errors import SchedulingError
from repro.sim.kernel import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_step_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(2.5, fired.append, "x")
    assert sim.step()
    assert sim.now == 2.5
    assert fired == ["x"]


def test_step_on_empty_queue_returns_false():
    assert Simulator().step() is False


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_fires_due_events_and_pins_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    sim.schedule(7.0, fired.append, 7)
    sim.run_until(3.0)
    assert fired == [1, 2]
    assert sim.now == 3.0
    sim.run_until(10.0)
    assert fired == [1, 2, 7]


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SchedulingError):
        sim.run_until(2.0)


def test_run_until_inclusive_of_boundary_events():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "edge")
    sim.run_until(3.0)
    assert fired == ["edge"]


def test_events_scheduled_during_execution_run_in_order():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.5, second)

    def second():
        fired.append("second")

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 1.5


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "no")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_run_max_events_cap():
    sim = Simulator()
    for _ in range(10):
        sim.schedule(1.0, lambda: None)
    assert sim.run(max_events=4) == 4
    assert len(sim.events) == 6


def test_events_fired_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 5


def test_rng_for_is_deterministic_per_label():
    sim_a = Simulator(seed=7)
    sim_b = Simulator(seed=7)
    assert (
        sim_a.rng_for("client").random()
        == sim_b.rng_for("client").random()
    )
    assert (
        sim_a.rng_for("client").random()
        != sim_a.rng_for("server").random()
    )


def test_deterministic_execution_order():
    """Two identical simulations fire identical event sequences."""

    def build(seed):
        sim = Simulator(seed=seed)
        trace = []
        rng = sim.rng_for("load")
        for i in range(50):
            sim.schedule(rng.uniform(0, 10), trace.append, i)
        sim.run()
        return trace

    assert build(3) == build(3)
    assert build(3) != build(4)
