"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


def test_push_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(3.0, fired.append, ("c",))
    queue.push(1.0, fired.append, ("a",))
    queue.push(2.0, fired.append, ("b",))
    order = []
    while queue:
        event = queue.pop()
        order.append(event.time)
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_push_order():
    queue = EventQueue()
    first = queue.push(5.0, lambda: None)
    second = queue.push(5.0, lambda: None)
    assert queue.pop() is first
    assert queue.pop() is second


def test_len_counts_live_events_only():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.cancel(event)
    assert len(queue) == 1


def test_cancelled_event_is_skipped_by_pop():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    keeper = queue.push(2.0, lambda: None)
    queue.cancel(event)
    assert queue.pop() is keeper


def test_cancel_twice_is_safe():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0
    assert queue.pop() is None


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(4.0, lambda: None)
    queue.cancel(event)
    assert queue.peek_time() == 4.0


def test_peek_time_empty_queue():
    assert EventQueue().peek_time() is None


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert not queue


def test_event_repr_mentions_state():
    event = Event(1.5, 7, lambda: None, ())
    assert "1.5" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


def test_bool_reflects_liveness():
    queue = EventQueue()
    assert not queue
    queue.push(1.0, lambda: None)
    assert queue


def test_many_events_heap_property():
    queue = EventQueue()
    times = [7.0, 1.0, 9.0, 3.0, 5.0, 2.0, 8.0, 4.0, 6.0, 0.5]
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(times)
