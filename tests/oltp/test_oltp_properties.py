"""Property-based tests of the OLTP engines and the client audit."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.config import ExperimentConfig
from repro.oltp import OltpMachine, Transaction
from repro.oltp.engines import INITIAL_BALANCE


def _machine(engine):
    config = ExperimentConfig.smoke(server_name=engine)
    machine = OltpMachine(config)
    assert machine.boot()
    return machine


def _submit(machine, transaction):
    outcome = []
    machine.runtime.deliver(transaction, outcome.append)
    machine.run_for(0.3)
    return outcome[0] if outcome else None


_transfer = st.tuples(
    st.integers(min_value=0, max_value=39),   # from
    st.integers(min_value=40, max_value=79),  # to (disjoint: no self)
    st.integers(min_value=1, max_value=100),  # amount
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from(["walnut", "breezy"]),
       st.lists(_transfer, min_size=1, max_size=25))
def test_property_money_is_conserved(engine, transfers):
    """No sequence of acknowledged transfers changes the total balance."""
    machine = _machine(engine)
    for index, (source, target, amount) in enumerate(transfers):
        _submit(machine, Transaction(
            "transfer", index + 1, source, target, amount
        ))
    result = _submit(machine, Transaction("scan", 9999))
    assert result.ok
    assert result.value == machine.engine.accounts * INITIAL_BALANCE


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_transfer, min_size=1, max_size=20),
       st.integers(min_value=0, max_value=19))
def test_property_walnut_recovery_exact(transfers, crash_after):
    """Whatever the workload and whenever the crash, WAL recovery
    reproduces exactly the acknowledged state."""
    machine = _machine("walnut")
    expected = {}
    for index, (source, target, amount) in enumerate(transfers):
        result = _submit(machine, Transaction(
            "transfer", index + 1, source, target, amount
        ))
        if result is not None and result.ok:
            expected[source] = expected.get(source, 0) - amount
            expected[target] = expected.get(target, 0) + amount
        if index == crash_after:
            machine.runtime.kill()
            assert machine.runtime.restart()
    machine.runtime.kill()
    assert machine.runtime.restart()
    for account, delta in expected.items():
        result = _submit(machine, Transaction("balance", 10**6, account))
        assert result.value == INITIAL_BALANCE + delta
