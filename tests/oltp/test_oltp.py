"""Tests for the OLTP case study: engines, client audit, experiment."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.oltp import OltpExperiment, OltpMachine, Transaction
from repro.oltp.engines import INITIAL_BALANCE, create_engine
from repro.webservers.runtime import RuntimeState


def _machine(engine="walnut", **overrides):
    config = ExperimentConfig.smoke(server_name=engine, **overrides)
    machine = OltpMachine(config)
    assert machine.boot()
    return machine


def _submit(machine, transaction, wait=0.5):
    outcome = []
    machine.runtime.deliver(transaction, outcome.append)
    machine.run_for(wait)
    return outcome[0] if outcome else None


def test_create_engine_registry():
    assert create_engine("walnut").name == "walnut"
    assert create_engine("breezy").name == "breezy"
    with pytest.raises(KeyError):
        create_engine("oracle")


@pytest.mark.parametrize("engine", ["walnut", "breezy"])
def test_transfer_and_balance(engine):
    machine = _machine(engine)
    result = _submit(
        machine, Transaction("transfer", 1, 3, 7, amount=100)
    )
    assert result.ok
    balance = _submit(machine, Transaction("balance", 2, 3))
    assert balance.ok and balance.value == INITIAL_BALANCE - 100
    balance = _submit(machine, Transaction("balance", 3, 7))
    assert balance.value == INITIAL_BALANCE + 100


@pytest.mark.parametrize("engine", ["walnut", "breezy"])
def test_scan_conserves_total(engine):
    machine = _machine(engine)
    for index in range(10):
        _submit(machine, Transaction(
            "transfer", index + 1, index, index + 20, amount=10
        ))
    result = _submit(machine, Transaction("scan", 99))
    assert result.ok
    assert result.value == machine.engine.accounts * INITIAL_BALANCE


def test_unknown_account_rejected():
    machine = _machine("walnut")
    result = _submit(machine, Transaction("transfer", 1, 5, 10**6, 10))
    assert not result.ok


def test_unknown_kind_rejected():
    machine = _machine("walnut")
    result = _submit(machine, Transaction("vacuum", 1))
    assert not result.ok


def test_walnut_survives_crash_with_all_acknowledged_transfers():
    """Kill the engine mid-stream: WAL replay must restore every
    acknowledged transfer."""
    machine = _machine("walnut")
    acknowledged = []
    for index in range(30):
        txn = Transaction("transfer", index + 1, index % 9,
                          10 + index % 9, amount=5 + index)
        result = _submit(machine, txn)
        if result.ok:
            acknowledged.append(txn)
    assert acknowledged
    expected = {a: INITIAL_BALANCE for a in range(machine.engine.accounts)}
    for txn in acknowledged:
        expected[txn.account_from] -= txn.amount
        expected[txn.account_to] += txn.amount
    machine.runtime.kill()
    assert machine.runtime.restart()
    for account in range(20):
        result = _submit(machine, Transaction("balance", 900, account))
        assert result.value == expected[account], f"account {account}"


def test_breezy_loses_unflushed_transfers_on_crash():
    machine = _machine("breezy")
    flush_period = machine.engine.FLUSH_PERIOD
    # Fewer transfers than a flush period: all acknowledged, none durable.
    for index in range(flush_period - 2):
        result = _submit(machine, Transaction(
            "transfer", index + 1, 0, 1, amount=10
        ))
        assert result.ok
    machine.runtime.kill()
    assert machine.runtime.restart()
    result = _submit(machine, Transaction("balance", 900, 0))
    assert result.value == INITIAL_BALANCE  # the transfers evaporated


def test_walnut_checkpoint_truncates_wal():
    machine = _machine("walnut")
    period = machine.engine.CHECKPOINT_PERIOD
    for index in range(period + 2):
        _submit(machine, Transaction(
            "transfer", index + 1, index % 5, 30 + index % 5, amount=1
        ), wait=0.2)
    wal = machine.kernel.vfs.lookup("/db/walnut/wal.log")
    assert len(wal.records) <= period  # truncated at the checkpoint


def test_client_baseline_is_clean_and_audited():
    config = ExperimentConfig.smoke(server_name="walnut")
    metrics = OltpExperiment(config).run_baseline()
    assert metrics.total_txns > 500
    assert metrics.er_percent == 0.0
    assert metrics.integrity_violations == 0
    assert metrics.tps > 50


def test_experiment_repeatable():
    config = ExperimentConfig.smoke(server_name="breezy")
    config.fault_sample = 10
    a = OltpExperiment(config).run_injection(iteration=1)
    b = OltpExperiment(config).run_injection(iteration=1)
    assert a.metrics.total_txns == b.metrics.total_txns
    assert (a.metrics.integrity_violations
            == b.metrics.integrity_violations)
    assert a.mis == b.mis


def test_domain_tuning_selects_oltp_footprint():
    config = ExperimentConfig.smoke(server_name="walnut")
    tuned = OltpExperiment(config).domain_tuned_faultload(
        profile_seconds=6.0
    )
    functions = set(tuned.functions())
    assert "NtWriteFile" in functions
    assert "RtlEnterCriticalSection" in functions
    # Walnut-only services are excluded by the intersection rule.
    assert "SetEndOfFile" not in functions
    # Web-server-only territory is out too.
    assert "GetLongPathNameW" not in functions


def test_integrity_audit_distinguishes_engines():
    """The acid test of the case study at unit scale."""
    tuned = None
    results = {}
    for engine in ("walnut", "breezy"):
        config = ExperimentConfig.smoke(server_name=engine)
        config.fault_sample = 24
        experiment = OltpExperiment(config)
        if tuned is None:
            tuned = experiment.domain_tuned_faultload(
                profile_seconds=6.0
            )
        results[engine] = experiment.run_injection(
            faultload=tuned, iteration=1
        )
    walnut = results["walnut"].metrics
    breezy = results["breezy"].metrics
    assert walnut.integrity_violations == 0
    assert breezy.integrity_violations > 0
