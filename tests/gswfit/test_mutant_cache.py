"""Tests for the mutant precompilation cache (tier-1).

The load-bearing properties: a fault location is compiled exactly once
per campaign no matter how many slots inject it, worker processes share
one compilation pass through the disk tier, and the cache never changes
what the injector actually swaps in.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.faults.faultload import Faultload
from repro.gswfit import cache as cache_module
from repro.gswfit.cache import (
    MUTANT_CACHE_STATS,
    build_mutant_cached,
    clear_mutant_cache,
    mutant_cache_path,
    mutant_fingerprint,
    warm_mutant_cache,
)
from repro.gswfit.injector import FaultInjector
from repro.gswfit.mutator import build_mutant
from repro.gswfit.scanner import scan_build
from repro.ossim.builds import NT50


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_mutant_cache()
    yield
    clear_mutant_cache()


@pytest.fixture(scope="module")
def faultload():
    return scan_build(NT50)


def test_cached_mutant_equals_direct_build(faultload):
    location = faultload.locations[0]
    function, direct = build_mutant(location)
    cached_function, cached = build_mutant_cached(location)
    assert cached_function is function
    assert cached.co_code == direct.co_code
    assert cached.co_filename == direct.co_filename
    assert cached.co_argcount == direct.co_argcount


def test_three_slot_campaign_compiles_once(faultload, monkeypatch):
    """The compile-counter probe: inject/restore three slots over the
    same location and observe exactly one mutant compilation."""
    calls = []
    real = cache_module.build_mutant

    def counting(location, probed=False):
        calls.append(location.fault_id)
        return real(location, probed=probed)

    monkeypatch.setattr(cache_module, "build_mutant", counting)
    location = faultload.locations[0]
    injector = FaultInjector()
    for _ in range(3):
        injector.inject(location)
        injector.restore(location)
    assert calls == [location.fault_id]
    assert MUTANT_CACHE_STATS.memory_hits == 2


def test_fingerprint_separates_fault_types_on_one_function(faultload):
    by_function = {}
    for location in faultload:
        by_function.setdefault(
            (location.module, location.function), []
        ).append(location)
    pair = next(
        locations for locations in by_function.values()
        if len({loc.fault_type for loc in locations}) >= 2
    )
    a, b = pair[0], next(
        loc for loc in pair if loc.fault_type != pair[0].fault_type
    )
    assert mutant_fingerprint(a) == mutant_fingerprint(a)
    assert mutant_fingerprint(a) != mutant_fingerprint(b)


def test_warm_mutant_cache_compiles_each_location_once(faultload):
    small = Faultload(
        faultload.os_codename, faultload.locations[:6], name="small"
    )
    first = warm_mutant_cache(small)
    assert first == {"slots": 6, "compiled": 6, "cached": 0, "failed": 0}
    second = warm_mutant_cache(small)
    assert second == {"slots": 6, "compiled": 0, "cached": 6, "failed": 0}


def test_disk_tier_survives_memory_clear(faultload, tmp_path):
    location = faultload.locations[0]
    build_mutant_cached(location, cache_dir=tmp_path)
    path = mutant_cache_path(
        tmp_path, mutant_fingerprint(location), location.fault_id
    )
    assert path.exists()
    clear_mutant_cache()
    build_mutant_cached(location, cache_dir=tmp_path)
    assert MUTANT_CACHE_STATS.as_dict() == {
        "compiles": 0, "memory_hits": 0, "disk_hits": 1
    }


def test_corrupt_disk_entry_recompiles(faultload, tmp_path):
    location = faultload.locations[0]
    build_mutant_cached(location, cache_dir=tmp_path)
    path = mutant_cache_path(
        tmp_path, mutant_fingerprint(location), location.fault_id
    )
    path.write_bytes(b"not a marshalled code object")
    clear_mutant_cache()
    function, code = build_mutant_cached(location, cache_dir=tmp_path)
    assert MUTANT_CACHE_STATS.compiles == 1
    assert code.co_argcount == function.__code__.co_argcount


def _worker_compile_stats(location, cache_dir):
    # Runs in a worker process.  Drop any state inherited through fork so
    # the only way to avoid compiling is the on-disk tier.
    clear_mutant_cache()
    build_mutant_cached(location, cache_dir=cache_dir)
    return MUTANT_CACHE_STATS.as_dict()


def test_worker_processes_share_one_compilation_pass(faultload, tmp_path):
    """A parent warm-up means fresh worker processes compile nothing."""
    sample = faultload.locations[:4]
    for location in sample:
        build_mutant_cached(location, cache_dir=tmp_path)
    assert MUTANT_CACHE_STATS.compiles == len(sample)
    with ProcessPoolExecutor(max_workers=2) as pool:
        results = list(pool.map(
            _worker_compile_stats, sample, [tmp_path] * len(sample)
        ))
    for stats in results:
        assert stats["compiles"] == 0
        assert stats["disk_hits"] == 1
