"""Tests for scanning (step 1) and mutant construction."""

import pytest

from repro.faults.location import FaultLocation
from repro.faults.types import FaultType, iter_fault_types
from repro.gswfit.mutator import (
    MutantError,
    build_mutant,
    mutated_source,
    resolve_function,
)
from repro.gswfit.scanner import scan_build, scan_function, scan_module
from repro.ossim.builds import NT50, NT51
from repro.ossim.modules import ntdll50


def test_scan_function_orders_by_table1_types():
    locations = scan_function(
        ntdll50.RtlAllocateHeap, display_module="Ntdll"
    )
    assert locations
    order = [loc.fault_type for loc in locations]
    table_order = {ft: i for i, ft in enumerate(iter_fault_types())}
    assert order == sorted(order, key=table_order.get)


def test_scan_function_is_deterministic():
    a = scan_function(ntdll50.NtCreateFile, display_module="Ntdll")
    b = scan_function(ntdll50.NtCreateFile, display_module="Ntdll")
    assert [l.fault_id for l in a] == [l.fault_id for l in b]


def test_scan_module_covers_exports_and_internals():
    locations = scan_module(ntdll50)
    functions = {loc.function for loc in locations}
    assert "RtlAllocateHeap" in functions
    assert "_canonical_components" in functions
    without = scan_module(ntdll50, include_internal=False)
    functions = {loc.function for loc in without}
    assert "_canonical_components" not in functions


def test_scan_build_totals_and_ratio():
    fl50 = scan_build(NT50)
    fl51 = scan_build(NT51)
    assert len(fl50) > 200
    assert len(fl51) > len(fl50) * 1.2  # the Table 3 scaling effect


def test_scan_build_mia_dominates():
    counts = scan_build(NT50).counts_by_type()
    assert max(counts, key=counts.get) is FaultType.MIA


def test_scan_build_rare_types():
    counts = scan_build(NT50).counts_by_type()
    ordered = sorted(counts, key=counts.get)
    assert FaultType.MVAV in ordered[:3]
    assert FaultType.WAEP in ordered[:3]


def test_every_fault_type_present_in_both_builds():
    for build in (NT50, NT51):
        counts = scan_build(build).counts_by_type()
        for fault_type in iter_fault_types():
            assert counts[fault_type] > 0, (
                f"{fault_type.value} missing on {build.codename}"
            )


def test_locations_carry_real_line_numbers():
    import inspect

    locations = scan_function(
        ntdll50.RtlAllocateHeap, display_module="Ntdll"
    )
    source_lines, first = inspect.getsourcelines(ntdll50.RtlAllocateHeap)
    last = first + len(source_lines)
    for location in locations:
        assert first <= location.lineno < last


def test_build_mutant_returns_swappable_code():
    locations = scan_function(ntdll50.RtlSizeHeap)
    function, code = build_mutant(locations[0])
    assert function is ntdll50.RtlSizeHeap
    assert code is not function.__code__
    assert code.co_argcount == function.__code__.co_argcount
    assert code.co_freevars == ()


def test_every_nt50_location_builds_a_mutant():
    """The whole faultload must be injectable (no stale sites)."""
    faultload = scan_build(NT50)
    for location in faultload:
        _function, code = build_mutant(location)
        assert code is not None


def test_mutated_source_differs_from_original():
    import inspect
    import textwrap

    locations = scan_function(ntdll50.NtClose)
    original = textwrap.dedent(inspect.getsource(ntdll50.NtClose))
    for location in locations[:5]:
        assert mutated_source(location) != original


def test_unknown_site_key_raises_mutant_error():
    location = FaultLocation(
        module="repro.ossim.modules.ntdll50",
        display_module="Ntdll",
        function="NtClose",
        fault_type=FaultType.MIA,
        site_key="99999",
    )
    with pytest.raises(MutantError):
        build_mutant(location)


def test_unknown_function_raises_mutant_error():
    location = FaultLocation(
        module="repro.ossim.modules.ntdll50",
        display_module="Ntdll",
        function="NtDoesNotExist",
        fault_type=FaultType.MIA,
        site_key="1",
    )
    with pytest.raises(MutantError):
        resolve_function(location)


def test_site_keys_unique_within_function_and_type():
    faultload = scan_build(NT50)
    seen = set()
    for location in faultload:
        key = (location.function, location.fault_type, location.site_key,
               location.module)
        assert key not in seen
        seen.add(key)
