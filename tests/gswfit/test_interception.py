"""Tests for the interception (ablation baseline) injector."""

import pytest

from repro.gswfit.injector import FitBoundaryError
from repro.gswfit.interception import (
    InterceptionFault,
    InterceptionInjector,
)
from repro.ossim.builds import NT50
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.ossim.modules import ntdll50
from repro.sim.errors import SimSegfault


@pytest.fixture
def injector():
    injector = InterceptionInjector()
    yield injector
    injector.restore_all()


def _ctx():
    kernel = SimKernel()
    kernel.vfs.mkdir("/d", parents=True)
    kernel.vfs.create_file("/d/f", size=100)
    return OsInstance(NT50, kernel).new_process()


def test_error_mode_returns_contract_shaped_error(injector):
    fault = InterceptionFault(
        "repro.ossim.modules.ntdll50", "RtlAllocateHeap", mode="error"
    )
    ctx = _ctx()
    with injector.injected(fault):
        assert ctx.api.RtlAllocateHeap(64, 0) == 0
    assert ctx.api.RtlAllocateHeap(64, 0) != 0


def test_error_mode_tuple_contract(injector):
    fault = InterceptionFault(
        "repro.ossim.modules.ntdll50", "NtReadFile", mode="error"
    )
    ctx = _ctx()
    handle = ctx.api.CreateFileW("/d/f", "r", 3)
    with injector.injected(fault):
        status, buffer, count = ctx.api.NtReadFile(handle, 10)
        assert status.is_error()
        assert buffer is None and count == 0


def test_exception_mode_segfaults(injector):
    fault = InterceptionFault(
        "repro.ossim.modules.ntdll50", "NtClose", mode="exception"
    )
    ctx = _ctx()
    with injector.injected(fault):
        with pytest.raises(SimSegfault):
            ctx.api.NtClose(4)


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        InterceptionFault("m", "f", mode="weird")


def test_boundary_enforced(injector):
    fault = InterceptionFault(
        "repro.webservers.apache_like", "ApacheLikeServer"
    )
    with pytest.raises(FitBoundaryError):
        injector.inject(fault)


def test_restore_all(injector):
    original = ntdll50.NtClose.__code__
    injector.inject(InterceptionFault(
        "repro.ossim.modules.ntdll50", "NtClose", mode="exception"
    ))
    assert ntdll50.NtClose.__code__ is not original
    injector.restore_all()
    assert ntdll50.NtClose.__code__ is original


def test_fault_mode_flag(injector):
    os_instance = OsInstance(NT50, SimKernel())
    injector.os_instances = [os_instance]
    fault = InterceptionFault(
        "repro.ossim.modules.ntdll50", "NtClose", mode="error"
    )
    injector.inject(fault)
    assert os_instance.fault_mode
    injector.restore(fault)
    assert not os_instance.fault_mode
