"""DSL re-expression fidelity (tier-1).

Eight of the twelve built-in operators are restated as declarative
specs (``repro.gswfit.dsl.builtin_specs``).  For each, on both OS
builds, the compiled operator must be indistinguishable from the class
implementation: identical site sets (keys, payloads, descriptions,
line numbers) and byte-identical mutant bytecode — the property the
``dsl-gate`` CI job extends to whole-campaign ``metrics_digest``
parity.
"""

import ast
import marshal

import pytest

from repro.gswfit.astutils import FunctionImage
from repro.gswfit.dsl import compile_spec, install_spec_operators
from repro.gswfit.dsl.builtin_specs import (
    BUILTIN_SPECS,
    builtin_spec,
    builtin_spec_names,
)
from repro.gswfit.operators import (
    operator_for,
    operator_provenance,
    reset_dynamic_operators,
)


@pytest.fixture
def dsl_registry():
    """Snapshot/restore the dynamic operator overlay around a test."""
    yield
    reset_dynamic_operators()
    from repro.faults.types import reset_dynamic_fault_types
    from repro.gswfit.cache import clear_scan_cache

    reset_dynamic_fault_types()
    clear_scan_cache()


def _fit_functions(build):
    for display_name, module in build.modules:
        names = list(module.__exports__)
        names.extend(getattr(module, "__internal__", []))
        for name in names:
            yield getattr(module, name), module.__name__


def _site_tuples(operator, image):
    return [
        (site.key, site.payload, site.description, site.lineno)
        for site in operator.find_sites(image)
    ]


def _bytecode(tree):
    return marshal.dumps(compile(tree, "<mutant>", "exec"))


def test_corpus_covers_at_least_six_builtins():
    assert len(BUILTIN_SPECS) >= 6
    assert all(spec["replaces"] for spec in BUILTIN_SPECS.values())


@pytest.mark.parametrize("name", builtin_spec_names())
def test_sites_and_mutants_equivalent(build, name):
    builtin = operator_for(name)
    dsl = compile_spec(builtin_spec(name))
    assert dsl.fault_type is builtin.fault_type
    assert dsl.node_types == builtin.node_types
    for function, module_name in _fit_functions(build):
        image = FunctionImage(function, module_name=module_name)
        builtin_sites = builtin.find_sites(image)
        assert _site_tuples(dsl, image) == _site_tuples(builtin, image), (
            function.__qualname__
        )
        for site in builtin_sites:
            reference = builtin.mutate(image, site)
            mutant = dsl.mutate(image, site)
            assert ast.unparse(mutant) == ast.unparse(reference)
            assert _bytecode(mutant) == _bytecode(reference)


def test_single_pass_scan_identical_with_dsl_replacements(
        build, dsl_registry):
    """A whole-build scan with every re-expression installed is
    byte-identical (JSON) to the built-in scan."""
    import json

    from repro.gswfit.scanner import scan_build

    def as_json(faultload):
        return json.dumps([loc.to_dict() for loc in faultload.locations])

    reference = as_json(scan_build(build))
    install_spec_operators(
        [builtin_spec(name) for name in builtin_spec_names()]
    )
    for name in builtin_spec_names():
        assert operator_provenance(name) == "dsl"
    assert as_json(scan_build(build)) == reference


def test_fingerprint_changes_when_dsl_replaces_builtin(
        build, dsl_registry):
    """Replacing a built-in with its re-expression re-keys the scan
    cache — behaviour is identical but the implementation identity (and
    thus cache soundness) is not."""
    from repro.gswfit.cache import library_fingerprint

    before = library_fingerprint(build)
    install_spec_operators([builtin_spec("MVI")])
    after = library_fingerprint(build)
    assert before != after


def test_dsl_operator_round_trips_through_mutator(build, dsl_registry):
    """Injector-path sanity: a DSL mutant built via the cache layer
    matches the built-in mutant code object byte for byte."""
    from repro.gswfit.cache import build_mutant_cached, clear_mutant_cache
    from repro.gswfit.scanner import scan_build

    location = next(
        loc for loc in scan_build(build) if loc.fault_type.value == "WVAV"
    )
    clear_mutant_cache()
    _, reference = build_mutant_cached(location)
    clear_mutant_cache()
    install_spec_operators([builtin_spec("WVAV")])
    _, mutant = build_mutant_cached(location)
    clear_mutant_cache()
    assert marshal.dumps(mutant) == marshal.dumps(reference)
