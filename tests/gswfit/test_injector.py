"""Tests for runtime injection (step 2): swap, restore, boundaries."""

import pytest

from repro.faults.location import FaultLocation
from repro.faults.types import FaultType
from repro.gswfit.injector import FaultInjector, FitBoundaryError
from repro.gswfit.scanner import scan_build, scan_function
from repro.ossim.builds import NT50
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.ossim.modules import ntdll50


@pytest.fixture
def injector():
    injector = FaultInjector()
    yield injector
    injector.restore_all()


def _mia_location(function=ntdll50.RtlSizeHeap):
    locations = scan_function(function, display_module="Ntdll")
    return next(
        loc for loc in locations if loc.fault_type is FaultType.MIA
    )


def test_inject_changes_live_behavior(injector):
    location = _mia_location()
    # Pristine: RtlSizeHeap(0) == -1 via the 'address == 0' guard.
    ctx = SimKernel().new_process()
    assert ntdll50.RtlSizeHeap(ctx, 0) == -1
    injector.inject(location)
    # MIA makes the guard body unconditional: always -1 — including for a
    # real block.
    address = ctx.heap.allocate(64)
    assert ntdll50.RtlSizeHeap(ctx, address) == -1
    injector.restore(location)
    assert ntdll50.RtlSizeHeap(ctx, address) >= 64


def test_restore_all_is_idempotent(injector):
    location = _mia_location()
    original = ntdll50.RtlSizeHeap.__code__
    injector.inject(location)
    injector.restore_all()
    injector.restore_all()
    assert ntdll50.RtlSizeHeap.__code__ is original


def test_restore_unknown_location_is_noop(injector):
    location = _mia_location()
    injector.restore(location)  # never injected


def test_double_inject_same_fault_rejected(injector):
    location = _mia_location()
    injector.inject(location)
    with pytest.raises(ValueError):
        injector.inject(location)


def test_overlapping_faults_same_function_rejected(injector):
    locations = scan_function(
        ntdll50.RtlSizeHeap, display_module="Ntdll"
    )
    first, second = locations[0], next(
        loc for loc in locations
        if loc.fault_type is not locations[0].fault_type
    )
    original = ntdll50.RtlSizeHeap.__code__
    injector.inject(first)
    mutant = ntdll50.RtlSizeHeap.__code__
    count = injector.injection_count
    # A second fault into the same function would be built from pristine
    # source: swapping it in would silently erase ``first`` while the
    # bookkeeping still says ``first`` is active.
    with pytest.raises(ValueError, match="one fault per function"):
        injector.inject(second)
    # The rejection happened before any state moved: the live code is
    # still the first mutant and no injection was counted.
    assert ntdll50.RtlSizeHeap.__code__ is mutant
    assert injector.injection_count == count
    assert injector.active_locations == [first]
    # Restore-then-inject is the legal sequence.
    injector.restore(first)
    assert ntdll50.RtlSizeHeap.__code__ is original
    injector.inject(second)
    assert ntdll50.RtlSizeHeap.__code__ is not original
    injector.restore(second)
    assert ntdll50.RtlSizeHeap.__code__ is original


def test_profile_mode_allows_repeated_same_function_prepares():
    injector = FaultInjector(profile_mode=True)
    locations = scan_function(
        ntdll50.RtlSizeHeap, display_module="Ntdll"
    )[:3]
    original = ntdll50.RtlSizeHeap.__code__
    # Profile mode never swaps code, so there is nothing to trample:
    # preparing many faults of one function is the Table 4 measurement.
    for location in locations:
        injector.inject(location)
    assert injector.injection_count == len(locations)
    assert ntdll50.RtlSizeHeap.__code__ is original


def test_two_faults_in_different_functions(injector):
    loc_a = _mia_location(ntdll50.RtlSizeHeap)
    loc_b = _mia_location(ntdll50.NtClose)
    originals = (ntdll50.RtlSizeHeap.__code__, ntdll50.NtClose.__code__)
    injector.inject(loc_a)
    injector.inject(loc_b)
    assert len(injector.active_locations) == 2
    injector.restore(loc_a)
    assert ntdll50.RtlSizeHeap.__code__ is originals[0]
    assert ntdll50.NtClose.__code__ is not originals[1]
    injector.restore(loc_b)
    assert ntdll50.NtClose.__code__ is originals[1]


def test_context_manager_restores_on_exception(injector):
    location = _mia_location()
    original = ntdll50.RtlSizeHeap.__code__
    with pytest.raises(RuntimeError):
        with injector.injected(location):
            assert ntdll50.RtlSizeHeap.__code__ is not original
            raise RuntimeError("boom")
    assert ntdll50.RtlSizeHeap.__code__ is original


def test_fit_boundary_protects_benchmark_target(injector):
    """The core BT/FIT separation: server code must be untouchable."""
    location = FaultLocation(
        module="repro.webservers.apache_like",
        display_module="Apache",
        function="ApacheLikeServer",
        fault_type=FaultType.MIA,
        site_key="1",
    )
    with pytest.raises(FitBoundaryError):
        injector.inject(location)


def test_fit_boundary_rejects_prefix_lookalikes(injector):
    location = FaultLocation(
        module="repro.ossim.modulesX.evil",
        display_module="X",
        function="f",
        fault_type=FaultType.MIA,
        site_key="1",
    )
    with pytest.raises(FitBoundaryError):
        injector.inject(location)


def test_profile_mode_never_swaps_code(injector):
    profile = FaultInjector(profile_mode=True)
    location = _mia_location()
    original = ntdll50.RtlSizeHeap.__code__
    profile.inject(location)
    assert ntdll50.RtlSizeHeap.__code__ is original
    assert profile.injection_count == 1
    assert profile.active_locations == []
    profile.restore(location)


def test_fault_mode_flag_tracks_active_faults(injector):
    os_instance = OsInstance(NT50, SimKernel())
    injector.os_instances = [os_instance]
    location = _mia_location()
    assert not os_instance.fault_mode
    injector.inject(location)
    assert os_instance.fault_mode
    injector.restore(location)
    assert not os_instance.fault_mode


def test_restored_behavior_identical_across_whole_faultload():
    """Inject+restore every scanned fault; OS behavior must be pristine.

    This is the repeatability backbone: a faultload pass must leave no
    residue in the code (state residue lives in processes, which restart).
    """
    injector = FaultInjector()
    faultload = scan_build(NT50).sample(60, seed=3)

    def probe():
        kernel = SimKernel()
        kernel.vfs.mkdir("/d", parents=True)
        kernel.vfs.create_file("/d/f", size=300)
        osi = OsInstance(NT50, kernel)
        ctx = osi.new_process()
        handle = ctx.api.CreateFileW("/d/f", "r", 3)
        ok, buffer, count = ctx.api.ReadFile(handle, 300)
        ctx.api.CloseHandle(handle)
        return (handle != 0, ok, count,
                buffer.fingerprint if buffer else 0)

    reference = probe()
    for location in faultload:
        with injector.injected(location):
            pass
        assert probe() == reference, f"residue after {location.fault_id}"
