"""Property-based tests over the whole mutation surface."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.gswfit.mutator import build_mutant
from repro.gswfit.scanner import scan_build
from repro.ossim.builds import NT51
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.gswfit.injector import FaultInjector
from repro.sim.errors import SimulationError

_FAULTLOAD_51 = scan_build(NT51)


def test_every_nt51_location_builds_a_mutant():
    for location in _FAULTLOAD_51:
        _function, code = build_mutant(location)
        assert code is not None


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(min_value=0, max_value=len(_FAULTLOAD_51) - 1))
def test_property_any_injected_fault_keeps_os_callable(index):
    """With any single fault active, driving the OS either works, fails
    with a status, or fails with a *simulated* condition — never with an
    uncontrolled Python error escaping the dispatch layer."""
    location = _FAULTLOAD_51[index]
    kernel = SimKernel()
    kernel.vfs.mkdir("/d", parents=True)
    kernel.vfs.create_file("/d/f", size=500)
    os_instance = OsInstance(NT51, kernel)
    injector = FaultInjector(os_instances=[os_instance])
    ctx = os_instance.new_process()
    with injector.injected(location):
        try:
            handle = ctx.api.CreateFileW("/d/f", "r", 3)
            if handle:
                ctx.api.ReadFile(handle, 200)
                ctx.api.SetFilePointer(handle, 0, 0)
                ctx.api.CloseHandle(handle)
            address = ctx.api.RtlAllocateHeap(128, 0)
            if address:
                ctx.api.RtlFreeHeap(address)
            ctx.api.RtlEnterCriticalSection("probe")
            ctx.api.RtlLeaveCriticalSection("probe")
        except SimulationError:
            pass  # segfault / blocked / budget: legitimate fault outcomes


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(min_value=0, max_value=len(_FAULTLOAD_51) - 1))
def test_property_restore_is_exact(index):
    """After restore, the function object carries its original code."""
    location = _FAULTLOAD_51[index]
    injector = FaultInjector()
    from repro.gswfit.mutator import resolve_function

    function = resolve_function(location)
    original = function.__code__
    injector.inject(location)
    assert function.__code__ is not original
    injector.restore(location)
    assert function.__code__ is original
