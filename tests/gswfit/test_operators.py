"""Per-operator tests: search patterns, preconditions, mutation semantics.

Each operator is exercised against small crafted functions written in the
FIT coding style; the mutant is compiled and *executed* to verify the
emulated fault actually behaves like the intended programming error.
"""

import ast

import pytest

from repro.faults.types import FaultType
from repro.gswfit.astutils import FunctionImage
from repro.gswfit.operators import operator_for, operator_library


# ----------------------------------------------------------------------
# Crafted targets (FIT style: init block, status returns, and-conditions)
# ----------------------------------------------------------------------

def sample_validation(ctx, size, flags=0):
    result = 0
    rounded = 0
    attempts = 3
    if size < 0:
        return -1
    if size > 1000 and flags != 0:
        return -2
    rounded = size + 8
    if flags == 2:
        rounded = rounded * 2
    helper_note(ctx, rounded)
    result = rounded
    return result


def helper_note(ctx, value):
    return None


def sample_bookkeeping(ctx, items):
    total = 0
    count = 0
    label = "sum"
    for item in items:
        total = total + item
        count = count + 1
    helper_note(ctx, total)
    helper_note(ctx, count)
    total = total + len(label)
    return (total, count)


def _image(function):
    return FunctionImage(function)


def _mutant(function, fault_type, site_index=0):
    image = _image(function)
    operator = operator_for(fault_type)
    sites = operator.find_sites(image)
    assert sites, f"no {fault_type.value} sites in {function.__name__}"
    tree = operator.mutate(image, sites[site_index])
    namespace = dict(function.__globals__)
    exec(compile(tree, "<mutant>", "exec"), namespace)
    return namespace[function.__name__], sites[site_index]


# ----------------------------------------------------------------------
# Library shape
# ----------------------------------------------------------------------

def test_library_covers_all_twelve_types():
    library = operator_library()
    assert set(library) == set(FaultType)
    for fault_type, operator in library.items():
        assert operator.fault_type is fault_type


def test_sites_have_stable_keys():
    image = _image(sample_validation)
    for operator in operator_library().values():
        for site in operator.find_sites(image):
            index, payload = type(site).parse_key(site.key)
            assert index == site.node_index
            assert payload == site.payload


# ----------------------------------------------------------------------
# MVI
# ----------------------------------------------------------------------

def test_mvi_targets_used_initializations_only():
    image = _image(sample_validation)
    sites = operator_for(FaultType.MVI).find_sites(image)
    described = " ".join(site.description for site in sites)
    assert "result = 0" in described
    assert "rounded = 0" in described
    # 'attempts' is never read again -> equivalent mutant, excluded.
    assert "attempts" not in described


def test_mvi_mutant_masked_on_reassigning_path():
    """Removing an init that every path overwrites is latent, not fatal."""
    mutant, _site = _mutant(sample_validation, FaultType.MVI)
    assert mutant(None, 5) == 13


def test_mvi_mutant_raises_unbound_local_on_uncovered_path():
    def target(ctx, flag):
        value = 0
        if flag:
            value = 5
        return value + 1

    mutant, _site = _mutant(target, FaultType.MVI)
    assert mutant(None, True) == 6
    with pytest.raises(UnboundLocalError):
        mutant(None, False)


# ----------------------------------------------------------------------
# MVAV / MVAE
# ----------------------------------------------------------------------

def test_mvav_requires_interesting_constant_outside_init():
    image = _image(sample_validation)
    sites = operator_for(FaultType.MVAV).find_sites(image)
    assert sites == []  # no non-zero constant reassignments here


def test_mvav_finds_and_removes_constant_reassignment():
    def target(ctx, mode):
        code = 0
        if mode == 1:
            code = 55
        return code

    mutant, _site = _mutant(target, FaultType.MVAV)
    assert target(None, 1) == 55
    assert mutant(None, 1) == 0  # the update is gone


def test_mvae_removes_expression_assignment():
    mutant, site = _mutant(sample_validation, FaultType.MVAE, 0)
    assert "rounded" in site.description
    # rounded keeps its init value 0, so result becomes 0 (flags==0 path).
    assert mutant(None, 5) == 0


def test_mvae_skips_call_expressions():
    def target(ctx, size):
        value = 0
        value = helper_note(ctx, size)
        return value

    sites = operator_for(FaultType.MVAE).find_sites(_image(target))
    assert sites == []  # RHS contains a call: MFC family, not MVAE


# ----------------------------------------------------------------------
# WVAV
# ----------------------------------------------------------------------

def test_wvav_perturbs_nonzero_constant():
    def target(ctx):
        limit = 10
        zero = 0
        return limit + zero

    image = _image(target)
    sites = operator_for(FaultType.WVAV).find_sites(image)
    assert len(sites) == 1  # zero excluded
    mutant, _site = _mutant(target, FaultType.WVAV)
    assert mutant(None) == 11  # off by one


def test_wvav_flips_booleans_and_trims_strings():
    from repro.gswfit.operators.assignment import perturb_constant

    assert perturb_constant(True) is False
    assert perturb_constant(False) is True
    assert perturb_constant(5) == 6
    assert perturb_constant("abc") == "ab"
    assert perturb_constant("x") == "xx"
    assert perturb_constant(1.5) == 4.0


# ----------------------------------------------------------------------
# MIA / MIFS / MLAC / WLEC
# ----------------------------------------------------------------------

def test_mia_unconditionalizes_guard():
    image = _image(sample_validation)
    sites = operator_for(FaultType.MIA).find_sites(image)
    assert len(sites) == 3
    mutant, site = _mutant(sample_validation, FaultType.MIA, 0)
    assert "size < 0" in site.description
    assert mutant(None, 5) == -1  # guard body now always runs


def test_mia_requires_no_else():
    def target(ctx, flag):
        value = 0
        if flag:
            value = 1
        else:
            value = 2
        return value

    sites = operator_for(FaultType.MIA).find_sites(_image(target))
    assert sites == []


def test_mifs_excludes_returning_bodies():
    image = _image(sample_validation)
    sites = operator_for(FaultType.MIFS).find_sites(image)
    assert len(sites) == 1  # only the 'flags == 2' block has no return
    mutant, _site = _mutant(sample_validation, FaultType.MIFS)
    assert mutant(None, 5, flags=2) == 13  # doubling block gone


def test_mifs_respects_body_size_limit():
    def target(ctx, flag):
        a = 0
        if flag:
            a = a + 1
            a = a + 1
            a = a + 1
            a = a + 1
            a = a + 1
            a = a + 1
        return a

    sites = operator_for(FaultType.MIFS).find_sites(_image(target))
    assert sites == []  # 6 statements > MAX_BODY


def test_mlac_drops_one_and_operand():
    image = _image(sample_validation)
    sites = operator_for(FaultType.MLAC).find_sites(image)
    assert len(sites) == 2  # two operands of the single and-chain
    mutant, site = _mutant(sample_validation, FaultType.MLAC, 1)
    assert "flags != 0" in site.description
    # Condition is now 'size > 1000' alone.
    assert mutant(None, 2000, flags=0) == -2
    assert sample_validation(None, 2000, flags=0) == 2008


def test_mlac_three_operand_chain_keeps_two():
    def target(ctx, a, b, c):
        if a > 0 and b > 0 and c > 0:
            return 1
        return 0

    image = _image(target)
    sites = operator_for(FaultType.MLAC).find_sites(image)
    assert len(sites) == 3
    operator = operator_for(FaultType.MLAC)
    tree = operator.mutate(image, sites[0])
    source = ast.unparse(tree)
    assert "b > 0 and c > 0" in source


def test_wlec_boundary_swap():
    def target(ctx, n):
        if n < 10:
            return "small"
        return "big"

    mutant, _site = _mutant(target, FaultType.WLEC)
    assert target(None, 10) == "big"
    assert mutant(None, 10) == "small"  # '<' became '<='
    assert mutant(None, 11) == "big"


def test_wlec_ignores_equality_and_loops():
    def target(ctx, n):
        if n == 3:
            return 1
        for i in range(n):
            pass
        return 0

    sites = operator_for(FaultType.WLEC).find_sites(_image(target))
    assert sites == []


# ----------------------------------------------------------------------
# MFC / MLPC
# ----------------------------------------------------------------------

def test_mfc_removes_statement_call():
    mutant, site = _mutant(sample_validation, FaultType.MFC)
    assert "helper_note" in site.description
    assert mutant(None, 5) == 13  # value unchanged, side effect gone


def test_mfc_excludes_charge_calls():
    def target(ctx, n):
        ctx.charge(100)
        helper_note(ctx, n)
        return n

    sites = operator_for(FaultType.MFC).find_sites(_image(target))
    assert len(sites) == 1
    assert "helper_note" in sites[0].description


def test_mlpc_removes_consecutive_simple_statements():
    image = _image(sample_bookkeeping)
    sites = operator_for(FaultType.MLPC).find_sites(image)
    assert sites  # the helper_note/helper_note/total run qualifies
    mutant, _site = _mutant(sample_bookkeeping, FaultType.MLPC)
    original = sample_bookkeeping(None, [1, 2, 3])
    assert mutant(None, [1, 2, 3]) != original


def test_mlpc_skips_init_block():
    def target(ctx):
        a = 0
        b = 0
        c = 0
        return a + b + c

    sites = operator_for(FaultType.MLPC).find_sites(_image(target))
    assert sites == []


# ----------------------------------------------------------------------
# WAEP / WPFV
# ----------------------------------------------------------------------

def test_waep_perturbs_arithmetic_argument():
    def target(ctx, n):
        return helper_len(ctx, n + 2)

    mutant, _site = _mutant(target, FaultType.WAEP)
    assert target(None, 10) == 12
    assert mutant(None, 10) == 8  # '+' became '-'


def test_waep_ignores_plain_arguments():
    def target(ctx, n):
        return helper_len(ctx, n)

    sites = operator_for(FaultType.WAEP).find_sites(_image(target))
    assert sites == []


def test_wpfv_swaps_local_variable_argument():
    def target(ctx, first, second):
        checked = 0
        checked = helper_pick(first, second)
        return checked

    image = _image(target)
    sites = operator_for(FaultType.WPFV).find_sites(image)
    assert len(sites) == 1  # one site per call
    mutant, site = _mutant(target, FaultType.WPFV)
    assert target(None, "a", "b") == "a"
    swapped = mutant(None, "a", "b")
    assert swapped != "a"


def test_wpfv_never_touches_ctx():
    def target(ctx, value):
        return helper_note(ctx, value)

    image = _image(target)
    for site in operator_for(FaultType.WPFV).find_sites(image):
        assert "'ctx'" not in site.description.split("becomes")[0]


def helper_len(ctx, value):
    return value


def helper_pick(first, second):
    return first


# ----------------------------------------------------------------------
# Mutation mechanics
# ----------------------------------------------------------------------

def test_mutation_never_alters_original_image():
    image = _image(sample_validation)
    before = ast.dump(image.tree)
    operator = operator_for(FaultType.MIA)
    sites = operator.find_sites(image)
    operator.mutate(image, sites[0])
    assert ast.dump(image.tree) == before


def test_emptied_body_gets_pass():
    def target(ctx, flag):
        if flag:
            helper_note(ctx, 1)
        return 0

    image = _image(target)
    operator = operator_for(FaultType.MFC)
    sites = operator.find_sites(image)
    tree = operator.mutate(image, sites[0])
    compile(tree, "<x>", "exec")  # must stay syntactically valid
    assert "pass" in ast.unparse(tree)
