"""Operator-spec validation, compilation and registry edge cases."""

import json

import pytest

from repro.faults.types import (
    iter_fault_types,
    lookup_fault_type,
    reset_dynamic_fault_types,
)
from repro.gswfit.dsl import (
    OperatorSpec,
    SpecValidationError,
    compile_spec,
    install_spec_operators,
)
from repro.gswfit.dsl.builtin_specs import builtin_spec
from repro.gswfit.operators import (
    operator_library,
    reset_dynamic_operators,
)


@pytest.fixture
def dsl_registry():
    yield
    reset_dynamic_operators()
    reset_dynamic_fault_types()
    from repro.gswfit.cache import clear_scan_cache

    clear_scan_cache()


def _new_type_spec(**overrides):
    spec = {
        "fault_type": "WBOC",
        "description": "Wrong boolean operator in branch condition",
        "nature": "wrong",
        "odc_type": "Checking",
        "pattern": {"node_types": ["If"]},
        "preconditions": [{"kind": "test-is-bool-chain"}],
        "mutation": {
            "kind": "swap-bool-operator",
            "description": "'{old_op}' becomes '{new_op}' in "
                           "'if {test}:'",
        },
    }
    spec.update(overrides)
    return spec


def _error(data):
    with pytest.raises(SpecValidationError) as excinfo:
        OperatorSpec.from_dict(data)
    return excinfo.value


def test_unknown_node_type_is_path_precise():
    exc = _error(_new_type_spec(
        pattern={"node_types": ["If", "Assgn"]}
    ))
    assert exc.path == "$.pattern.node_types[1]"
    assert "unknown AST node type 'Assgn'" in str(exc)


def test_unknown_predicate_kind_lists_the_vocabulary():
    exc = _error(_new_type_spec(
        preconditions=[{"kind": "has-els"}]
    ))
    assert exc.path == "$.preconditions[0].kind"
    assert "has-else" in str(exc)


def test_predicate_arity_unknown_parameter():
    exc = _error(_new_type_spec(
        preconditions=[{"kind": "body-size", "max": 5, "depth": 2}]
    ))
    assert exc.path == "$.preconditions[0].depth"
    assert "accepts no parameter 'depth'" in str(exc)


def test_predicate_arity_missing_required_parameter():
    exc = _error(_new_type_spec(
        preconditions=[{"kind": "body-size"}]
    ))
    assert "requires parameter 'max'" in str(exc)


def test_predicate_arity_wrong_parameter_type():
    exc = _error(_new_type_spec(
        preconditions=[{"kind": "body-size", "max": "five"}]
    ))
    assert exc.path == "$.preconditions[0].max"
    assert "expected int" in str(exc)


def test_template_referencing_absent_field_rejected():
    exc = _error(_new_type_spec(
        mutation={
            "kind": "swap-bool-operator",
            "description": "turn {bogus} around",
        }
    ))
    assert exc.path == "$.mutation.description"
    assert "{bogus}" in str(exc)
    assert "old_op" in str(exc)  # the error teaches the vocabulary


def test_duplicate_fault_type_colliding_with_builtin():
    exc = _error(_new_type_spec(fault_type="MVI"))
    assert exc.path == "$.fault_type"
    assert '"replaces": true' in str(exc)


def test_replaces_true_requires_a_builtin_name():
    spec = _new_type_spec(replaces=True)
    # Metadata keys are for new types only; a legitimate replaces spec
    # omits them, so strip before asserting on the replaces/name check.
    for key in ("description", "nature", "odc_type"):
        spec.pop(key)
    exc = _error(spec)
    assert exc.path == "$.replaces"


def test_scans_blocks_specs_are_rejected():
    exc = _error(_new_type_spec(
        pattern={"node_types": ["If"], "scans_blocks": True}
    ))
    assert exc.path == "$.pattern.scans_blocks"
    assert "not supported" in str(exc)


def test_new_type_requires_metadata():
    spec = _new_type_spec()
    del spec["nature"]
    exc = _error(spec)
    assert exc.path == "$.nature"


def test_injected_source_is_syntax_checked():
    exc = _error(_new_type_spec(
        mutation={
            "kind": "wrap-condition",
            "source": "if if",
            "description": "",
        }
    ))
    assert exc.path == "$.mutation.source"


def test_round_trip_spec_compile_to_dict_stable():
    raw = _new_type_spec()
    spec = OperatorSpec.from_dict(raw)
    operator = compile_spec(spec)
    canonical = operator.spec.to_dict()
    again = OperatorSpec.from_dict(canonical)
    assert again.to_dict() == canonical
    assert again.digest == spec.digest
    # Canonicalization makes default spelling irrelevant to the digest.
    explicit = OperatorSpec.from_dict(_new_type_spec(
        replaces=False, field_coverage_percent=0.0
    ))
    assert explicit.digest == spec.digest


def test_malformed_json_file_reports_line_and_column(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text('{"fault_type": "WBOC",\n  "pattern": }\n')
    with pytest.raises(SpecValidationError) as excinfo:
        OperatorSpec.load(path)
    message = str(excinfo.value)
    assert str(path) in message
    assert "line 2" in message


def test_spec_file_round_trip(tmp_path):
    path = tmp_path / "wboc.json"
    path.write_text(json.dumps(_new_type_spec()))
    spec = OperatorSpec.load(path)
    assert spec.fault_type_name == "WBOC"
    assert not spec.replaces


def test_new_fault_type_registers_end_to_end(build, dsl_registry):
    from repro.gswfit.scanner import scan_build

    install_spec_operators([_new_type_spec()])
    token = lookup_fault_type("WBOC")
    assert token in iter_fault_types()
    assert token in operator_library()
    faultload = scan_build(build)
    counts = faultload.counts_by_type()
    assert counts[token] > 0
    wboc = [loc for loc in faultload if loc.fault_type is token]
    assert all("becomes" in loc.description for loc in wboc)
    # The locations survive a JSON round trip (dynamic type lookup).
    from repro.faults.location import FaultLocation

    restored = FaultLocation.from_dict(wboc[0].to_dict())
    assert restored.fault_type is token


def test_install_is_idempotent_by_digest(dsl_registry):
    first = install_spec_operators([_new_type_spec()])
    second = install_spec_operators([_new_type_spec()])
    assert first[0] is second[0]


def test_dynamic_type_pickles_to_the_same_token(dsl_registry):
    import pickle

    install_spec_operators([_new_type_spec()])
    token = lookup_fault_type("WBOC")
    assert pickle.loads(pickle.dumps(token)) is token


def test_builtin_replacement_via_register_requires_replace_flag(
        dsl_registry):
    from repro.gswfit.dsl import compile_spec
    from repro.gswfit.operators import register_operator

    operator = compile_spec(builtin_spec("MVI"))
    with pytest.raises(ValueError):
        register_operator(operator, replace=False)


def test_shipped_example_spec_validates_and_scans(dsl_registry):
    """The README walkthrough's spec file stays valid and productive."""
    import pathlib

    from repro.gswfit.scanner import scan_build
    from repro.ossim.builds import NT50

    path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "examples" / "operator_specs" / "wrong_boolean_operator.json"
    )
    raw = json.loads(path.read_text(encoding="utf-8"))
    install_spec_operators([raw])
    token = lookup_fault_type("WBOC")
    faultload = scan_build(NT50)
    assert faultload.counts_by_type()[token] > 0
