"""Tests for the scan cache (tier-1: runs in the default suite)."""

import pytest

from repro.faults.faultload import Faultload
from repro.gswfit import cache as cache_module
from repro.gswfit.cache import (
    cache_key,
    cache_path,
    clear_scan_cache,
    library_fingerprint,
    scan_build_cached,
)
from repro.gswfit.scanner import scan_build
from repro.ossim.builds import NT50, NT51


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_scan_cache()
    yield
    clear_scan_cache()


def ids(faultload):
    return [loc.fault_id for loc in faultload]


def test_cached_scan_equals_direct_scan():
    assert ids(scan_build_cached(NT50)) == ids(scan_build(NT50))


def test_memory_cache_scans_once(monkeypatch):
    calls = []
    real = cache_module.scan_build

    def counting(build, include_internal=True):
        calls.append(build.codename)
        return real(build, include_internal=include_internal)

    monkeypatch.setattr(cache_module, "scan_build", counting)
    first = scan_build_cached(NT50)
    second = scan_build_cached(NT50)
    assert calls == ["nt50"]
    assert ids(first) == ids(second)
    # Distinct wrapper objects: deriving/flagging one cannot poison the
    # cache for the next caller.
    assert first is not second
    first.prepared = True
    assert not scan_build_cached(NT50).prepared


def test_disk_cache_survives_memory_clear(tmp_path, monkeypatch):
    calls = []
    real = cache_module.scan_build

    def counting(build, include_internal=True):
        calls.append(build.codename)
        return real(build, include_internal=include_internal)

    monkeypatch.setattr(cache_module, "scan_build", counting)
    first = scan_build_cached(NT50, cache_dir=tmp_path)
    assert calls == ["nt50"]
    key = cache_key(NT50)
    assert cache_path(tmp_path, key).exists()
    clear_scan_cache()
    second = scan_build_cached(NT50, cache_dir=tmp_path)
    assert calls == ["nt50"]  # loaded from disk, not rescanned
    assert ids(first) == ids(second)


def test_cache_keys_separate_builds_and_scopes():
    keys = {
        cache_key(NT50, include_internal=True),
        cache_key(NT50, include_internal=False),
        cache_key(NT51, include_internal=True),
    }
    assert len(keys) == 3
    assert ids(scan_build_cached(NT50)) != ids(scan_build_cached(NT51))
    full = scan_build_cached(NT50, include_internal=True)
    exports = scan_build_cached(NT50, include_internal=False)
    assert len(exports) < len(full)


def test_fingerprint_is_stable_and_in_filename(tmp_path):
    fingerprint = library_fingerprint(NT50)
    assert fingerprint == library_fingerprint(NT50)
    path = cache_path(tmp_path, cache_key(NT50))
    assert fingerprint[:16] in path.name
    # A different fingerprint names a different file — stale entries are
    # invisible rather than served.
    stale = ("nt50", "f" * 64, True)
    assert cache_path(tmp_path, stale) != path


def test_disk_roundtrip_preserves_faultload_fidelity(tmp_path):
    """The cache is only sound if save/load is lossless."""
    original = scan_build(NT50)
    path = tmp_path / "fl.json"
    original.save(path)
    restored = Faultload.load(path)
    assert restored.os_codename == original.os_codename
    assert restored.name == original.name
    assert ids(restored) == ids(original)
    assert [loc.to_dict() for loc in restored] == [
        loc.to_dict() for loc in original
    ]
