"""Single-pass scanner equivalence (tier-1).

The single-pass scanner is a pure optimisation: for every function of
both OS builds it must emit byte-identical fault locations — same sites,
same ``site_key`` values, same deterministic order — as the per-operator
reference scan (:func:`scan_function_per_operator`, one full AST
traversal per Table-1 operator, the historical implementation).
"""

import json

from repro.gswfit import scanner
from repro.gswfit.scanner import (
    scan_build,
    scan_function,
    scan_function_per_operator,
)


def _fit_functions(build):
    for display_name, module in build.modules:
        names = list(module.__exports__)
        names.extend(getattr(module, "__internal__", []))
        for name in names:
            yield display_name, module, getattr(module, name)


def _as_json(locations):
    return json.dumps([loc.to_dict() for loc in locations])


def test_single_pass_matches_reference_per_function(build):
    for display_name, module, function in _fit_functions(build):
        fast = scan_function(
            function,
            module_name=module.__name__,
            display_module=display_name,
        )
        reference = scan_function_per_operator(
            function,
            module_name=module.__name__,
            display_module=display_name,
        )
        assert _as_json(fast) == _as_json(reference), function.__qualname__


def test_scan_build_byte_identical_to_reference(build, monkeypatch):
    for include_internal in (True, False):
        fast = scan_build(build, include_internal=include_internal)
        monkeypatch.setattr(
            scanner, "scan_function", scan_function_per_operator
        )
        reference = scan_build(build, include_internal=include_internal)
        monkeypatch.undo()
        assert fast.os_codename == reference.os_codename
        assert _as_json(fast.locations) == _as_json(reference.locations)
