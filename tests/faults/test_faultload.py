"""Tests for fault locations and the faultload container."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.faultload import Faultload
from repro.faults.location import FaultLocation
from repro.faults.types import FaultType, iter_fault_types


def make_location(index, fault_type=FaultType.MIA, function="NtReadFile"):
    return FaultLocation(
        module="repro.ossim.modules.ntdll50",
        display_module="Ntdll",
        function=function,
        fault_type=fault_type,
        site_key=str(index),
        lineno=index,
        description=f"site {index}",
    )


@pytest.fixture
def faultload():
    locations = []
    for index, fault_type in enumerate(iter_fault_types()):
        for copy in range(index + 1):  # 1 MVI, 2 MVAV, ... 12 WPFV
            locations.append(make_location(
                index * 100 + copy, fault_type,
                function=f"Func{copy % 3}",
            ))
    return Faultload("nt50", locations, name="test")


def test_location_roundtrip():
    location = make_location(7, FaultType.WVAV)
    assert FaultLocation.from_dict(location.to_dict()) == location


def test_location_fault_id_unique_per_site():
    a = make_location(1)
    b = make_location(2)
    assert a.fault_id != b.fault_id


def test_counts_by_type(faultload):
    counts = faultload.counts_by_type()
    assert counts[FaultType.MVI] == 1
    assert counts[FaultType.WPFV] == 12
    assert sum(counts.values()) == len(faultload)


def test_counts_by_function(faultload):
    counts = faultload.counts_by_function()
    assert sum(counts.values()) == len(faultload)
    assert all(module == "Ntdll" for module, _f in counts)


def test_restrict_to_functions(faultload):
    restricted = faultload.restrict_to_functions(["Func0"])
    assert len(restricted) > 0
    assert all(loc.function == "Func0" for loc in restricted)
    assert restricted.os_codename == "nt50"


def test_restrict_to_types(faultload):
    restricted = faultload.restrict_to_types(["MIA", FaultType.MVI])
    kinds = {loc.fault_type for loc in restricted}
    assert kinds == {FaultType.MIA, FaultType.MVI}


def test_sample_is_deterministic(faultload):
    a = faultload.sample(20, seed=5)
    b = faultload.sample(20, seed=5)
    assert [l.fault_id for l in a] == [l.fault_id for l in b]
    c = faultload.sample(20, seed=6)
    assert [l.fault_id for l in a] != [l.fault_id for l in c]


def test_sample_preserves_type_presence(faultload):
    """Stratified sampling keeps every fault type represented."""
    sampled = faultload.sample(24, seed=1)
    present = {loc.fault_type for loc in sampled}
    assert present == set(
        ft for ft in iter_fault_types()
        if faultload.counts_by_type()[ft] > 0
    )


def test_sample_larger_than_population_is_identity(faultload):
    sampled = faultload.sample(10_000)
    assert len(sampled) == len(faultload)


def test_sample_keeps_scan_order(faultload):
    sampled = faultload.sample(30, seed=2)
    ids = [loc.fault_id for loc in faultload]
    positions = [ids.index(loc.fault_id) for loc in sampled]
    assert positions == sorted(positions)


def test_interleave_types_alternates(faultload):
    interleaved = faultload.interleave_types()
    assert len(interleaved) == len(faultload)
    first_types = [loc.fault_type for loc in interleaved[:12]]
    assert len(set(first_types)) == 12  # one of each in the first round


def test_json_roundtrip(faultload):
    restored = Faultload.from_json(faultload.to_json())
    assert restored.os_codename == faultload.os_codename
    assert [l.fault_id for l in restored] == [
        l.fault_id for l in faultload
    ]


def test_save_load(tmp_path, faultload):
    path = tmp_path / "fl.json"
    faultload.save(path)
    restored = Faultload.load(path)
    assert len(restored) == len(faultload)


def test_indexing_and_iteration(faultload):
    assert faultload[0].fault_type == FaultType.MVI
    assert list(iter(faultload))[0] is faultload[0]


@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=80), st.integers(0, 100))
def test_property_sample_size_bounds(count, seed):
    locations = [make_location(i, FaultType.MIA) for i in range(60)]
    faultload = Faultload("nt50", locations)
    sampled = faultload.sample(count, seed=seed)
    assert len(sampled) <= min(count, 60)
    assert len(sampled) >= min(count, 1)
    ids = {loc.fault_id for loc in sampled}
    assert len(ids) == len(sampled)  # no duplicates
