"""Tests for fault locations and the faultload container."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.faultload import Faultload
from repro.faults.location import FaultLocation
from repro.faults.types import FaultType, iter_fault_types


def make_location(index, fault_type=FaultType.MIA, function="NtReadFile"):
    return FaultLocation(
        module="repro.ossim.modules.ntdll50",
        display_module="Ntdll",
        function=function,
        fault_type=fault_type,
        site_key=str(index),
        lineno=index,
        description=f"site {index}",
    )


@pytest.fixture
def faultload():
    locations = []
    for index, fault_type in enumerate(iter_fault_types()):
        for copy in range(index + 1):  # 1 MVI, 2 MVAV, ... 12 WPFV
            locations.append(make_location(
                index * 100 + copy, fault_type,
                function=f"Func{copy % 3}",
            ))
    return Faultload("nt50", locations, name="test")


def test_location_roundtrip():
    location = make_location(7, FaultType.WVAV)
    assert FaultLocation.from_dict(location.to_dict()) == location


def test_location_fault_id_unique_per_site():
    a = make_location(1)
    b = make_location(2)
    assert a.fault_id != b.fault_id


def test_counts_by_type(faultload):
    counts = faultload.counts_by_type()
    assert counts[FaultType.MVI] == 1
    assert counts[FaultType.WPFV] == 12
    assert sum(counts.values()) == len(faultload)


def test_counts_by_function(faultload):
    counts = faultload.counts_by_function()
    assert sum(counts.values()) == len(faultload)
    assert all(module == "Ntdll" for module, _f in counts)


def test_restrict_to_functions(faultload):
    restricted = faultload.restrict_to_functions(["Func0"])
    assert len(restricted) > 0
    assert all(loc.function == "Func0" for loc in restricted)
    assert restricted.os_codename == "nt50"


def test_restrict_to_types(faultload):
    restricted = faultload.restrict_to_types(["MIA", FaultType.MVI])
    kinds = {loc.fault_type for loc in restricted}
    assert kinds == {FaultType.MIA, FaultType.MVI}


def test_sample_is_deterministic(faultload):
    a = faultload.sample(20, seed=5)
    b = faultload.sample(20, seed=5)
    assert [l.fault_id for l in a] == [l.fault_id for l in b]
    c = faultload.sample(20, seed=6)
    assert [l.fault_id for l in a] != [l.fault_id for l in c]


def test_sample_preserves_type_presence(faultload):
    """Stratified sampling keeps every fault type represented."""
    sampled = faultload.sample(24, seed=1)
    present = {loc.fault_type for loc in sampled}
    assert present == set(
        ft for ft in iter_fault_types()
        if faultload.counts_by_type()[ft] > 0
    )


def test_sample_larger_than_population_is_identity(faultload):
    sampled = faultload.sample(10_000)
    assert len(sampled) == len(faultload)


def test_sample_keeps_scan_order(faultload):
    sampled = faultload.sample(30, seed=2)
    ids = [loc.fault_id for loc in faultload]
    positions = [ids.index(loc.fault_id) for loc in sampled]
    assert positions == sorted(positions)


def test_interleave_types_alternates(faultload):
    interleaved = faultload.interleave_types()
    assert len(interleaved) == len(faultload)
    first_types = [loc.fault_type for loc in interleaved[:12]]
    assert len(set(first_types)) == 12  # one of each in the first round


def test_json_roundtrip(faultload):
    restored = Faultload.from_json(faultload.to_json())
    assert restored.os_codename == faultload.os_codename
    assert [l.fault_id for l in restored] == [
        l.fault_id for l in faultload
    ]


def test_save_load(tmp_path, faultload):
    path = tmp_path / "fl.json"
    faultload.save(path)
    restored = Faultload.load(path)
    assert len(restored) == len(faultload)


def test_indexing_and_iteration(faultload):
    assert faultload[0].fault_type == FaultType.MVI
    assert list(iter(faultload))[0] is faultload[0]


@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=80), st.integers(0, 100))
def test_property_sample_size_bounds(count, seed):
    locations = [make_location(i, FaultType.MIA) for i in range(60)]
    faultload = Faultload("nt50", locations)
    sampled = faultload.sample(count, seed=seed)
    assert len(sampled) <= min(count, 60)
    assert len(sampled) >= min(count, 1)
    ids = {loc.fault_id for loc in sampled}
    assert len(ids) == len(sampled)  # no duplicates


def test_sample_trims_across_types_not_scan_tail():
    """Rounding overshoot must not be paid by the types scanned last.

    With 12 types of 4 locations each and count=13, per-type rounding
    takes one of each (12) plus the largest remainder... the old code
    trimmed ``kept[:count]``, deleting every pick of the last types in
    scan order.  The round-robin trim instead drops from the types
    holding the most picks, so every type stays represented.
    """
    locations = []
    for index, fault_type in enumerate(iter_fault_types()):
        for copy in range(4):
            locations.append(make_location(index * 10 + copy, fault_type))
    faultload = Faultload("nt50", locations)
    for count in (18, 20, 32):  # counts where rounding overshoots
        sampled = faultload.sample(count, seed=3)
        assert len(sampled) == count
        present = {loc.fault_type for loc in sampled}
        assert present == set(iter_fault_types()), (
            f"count={count} lost types {set(iter_fault_types()) - present}"
        )
        counts = sampled.counts_by_type().values()
        assert max(counts) - min(counts) <= 1  # trim kept the balance
    # Rounding may also *undershoot*; that is tolerated, never padded.
    assert len(faultload.sample(13, seed=3)) == 12


def test_sample_overshoot_is_trimmed_exactly(faultload):
    # The fixture's type mix (1..12 per type) makes stratified rounding
    # overshoot for most counts; the result must still be exact.
    for count in (20, 24, 30, 40):
        assert len(faultload.sample(count, seed=7)) == count


def test_sample_naming_is_unified(faultload):
    sampled = faultload.sample(20, seed=1)
    assert sampled.name == f"{faultload.name}-sampled20"
    identity = faultload.sample(10_000)
    assert identity.name == f"{faultload.name}-sampled{len(faultload)}"


def test_sample_deterministic_across_python_runs(faultload):
    """The scan cache + journal rely on cross-process determinism."""
    import subprocess
    import sys

    sampled = ",".join(
        loc.fault_id for loc in faultload.sample(20, seed=5)
    )
    script = (
        "from repro.faults.faultload import Faultload\n"
        "from repro.faults.location import FaultLocation\n"
        "from repro.faults.types import iter_fault_types\n"
        "locations = []\n"
        "for index, fault_type in enumerate(iter_fault_types()):\n"
        "    for copy in range(index + 1):\n"
        "        locations.append(FaultLocation(\n"
        "            module='repro.ossim.modules.ntdll50',\n"
        "            display_module='Ntdll',\n"
        "            function=f'Func{copy % 3}',\n"
        "            fault_type=fault_type,\n"
        "            site_key=str(index * 100 + copy),\n"
        "            lineno=index * 100 + copy,\n"
        "            description=''))\n"
        "fl = Faultload('nt50', locations, name='test')\n"
        "print(','.join(l.fault_id for l in fl.sample(20, seed=5)))\n"
    )
    output = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    assert output == sampled


def test_interleave_types_is_idempotent(faultload):
    once = faultload.interleave_types()
    twice = once.interleave_types()
    assert [l.fault_id for l in twice] == [l.fault_id for l in once]


def test_interleave_types_round_robin_property(faultload):
    """While k types still have entries, every consecutive k-block of
    the interleaved order contains k distinct types."""
    interleaved = list(faultload.interleave_types())
    remaining = dict(faultload.counts_by_type())
    position = 0
    while position < len(interleaved):
        active = sum(1 for value in remaining.values() if value > 0)
        block = interleaved[position:position + active]
        block_types = [loc.fault_type for loc in block]
        assert len(set(block_types)) == len(block)
        for fault_type in block_types:
            remaining[fault_type] -= 1
        position += active


def test_interleave_preserves_order_within_type(faultload):
    interleaved = faultload.interleave_types()
    for fault_type in iter_fault_types():
        original = [l.fault_id for l in faultload
                    if l.fault_type == fault_type]
        shuffled = [l.fault_id for l in interleaved
                    if l.fault_type == fault_type]
        assert shuffled == original


def test_prepared_flag_roundtrips_json(faultload):
    assert not faultload.prepared
    faultload.prepared = True
    restored = Faultload.from_json(faultload.to_json())
    assert restored.prepared
    assert not Faultload("nt50", []).prepared


def test_save_load_preserves_every_field(tmp_path, faultload):
    """The scan cache depends on save/load being lossless."""
    faultload.prepared = True
    path = tmp_path / "fl.json"
    faultload.save(path)
    restored = Faultload.load(path)
    assert restored.name == faultload.name
    assert restored.prepared == faultload.prepared
    assert [l.to_dict() for l in restored] == [
        l.to_dict() for l in faultload
    ]
