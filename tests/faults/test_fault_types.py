"""Tests for the fault-type model and field data (paper Table 1)."""

import pytest

from repro.faults.fielddata import (
    FIELD_COVERAGE,
    coverage_by_nature,
    coverage_by_odc_type,
    total_field_coverage,
)
from repro.faults.types import (
    ConstructNature,
    FaultType,
    ODCType,
    fault_type_info,
    iter_fault_types,
)
from repro.reporting.paper import PAPER


def test_exactly_twelve_types_in_table_order():
    types = iter_fault_types()
    assert len(types) == 12
    assert [ft.value for ft in types] == [
        "MVI", "MVAV", "MVAE", "MIA", "MLAC", "MFC",
        "MIFS", "MLPC", "WVAV", "WLEC", "WAEP", "WPFV",
    ]


def test_every_type_has_info():
    for fault_type in iter_fault_types():
        info = fault_type_info(fault_type)
        assert info.description
        assert info.field_coverage_percent > 0


def test_info_accepts_string_names():
    assert fault_type_info("MIA").fault_type is FaultType.MIA


def test_field_coverage_matches_paper_table1():
    for name, expected in PAPER["table1"].items():
        if name == "total":
            continue
        assert FIELD_COVERAGE[FaultType(name)] == pytest.approx(expected)


def test_total_coverage_is_papers_50_69():
    assert total_field_coverage() == pytest.approx(
        PAPER["table1"]["total"], abs=0.01
    )


def test_no_extraneous_construct_types():
    """The paper excludes extraneous-construct faults as too rare."""
    natures = coverage_by_nature()
    assert natures[ConstructNature.EXTRANEOUS] == 0.0
    assert natures[ConstructNature.MISSING] > natures[
        ConstructNature.WRONG
    ]


def test_odc_classification_matches_paper():
    expected = {
        FaultType.MVI: ODCType.ASSIGNMENT,
        FaultType.MVAV: ODCType.ASSIGNMENT,
        FaultType.MVAE: ODCType.ASSIGNMENT,
        FaultType.MIA: ODCType.CHECKING,
        FaultType.MLAC: ODCType.CHECKING,
        FaultType.MFC: ODCType.ALGORITHM,
        FaultType.MIFS: ODCType.ALGORITHM,
        FaultType.MLPC: ODCType.ALGORITHM,
        FaultType.WVAV: ODCType.ASSIGNMENT,
        FaultType.WLEC: ODCType.CHECKING,
        FaultType.WAEP: ODCType.INTERFACE,
        FaultType.WPFV: ODCType.INTERFACE,
    }
    for fault_type, odc in expected.items():
        assert fault_type_info(fault_type).odc_type is odc


def test_four_odc_types_covered():
    by_odc = coverage_by_odc_type()
    assert len(by_odc) == 4
    assert sum(by_odc.values()) == pytest.approx(total_field_coverage())
