"""Tests for faultload validation."""

import pytest

from repro.faults.faultload import Faultload
from repro.faults.location import FaultLocation
from repro.faults.types import FaultType
from repro.faults.validate import validate_faultload
from repro.gswfit.scanner import scan_build
from repro.ossim.builds import NT50


@pytest.fixture(scope="module")
def scanned():
    return scan_build(NT50)


def test_scanned_faultload_is_valid(scanned):
    report = validate_faultload(scanned.sample(40, seed=1))
    assert report.ok, str(report)
    assert report.checked == 40
    assert report.errors() == []


def test_empty_faultload_invalid():
    report = validate_faultload(Faultload("nt50", []))
    assert not report.ok
    assert report.errors()[0].code == "empty"


def test_duplicate_locations_flagged(scanned):
    location = scanned[0]
    report = validate_faultload(
        Faultload("nt50", [location, location]), resolve_limit=0
    )
    assert not report.ok
    assert any(f.code == "duplicate" for f in report.findings)


def test_unresolvable_location_flagged():
    bogus = FaultLocation(
        module="repro.ossim.modules.ntdll50",
        display_module="Ntdll",
        function="NtClose",
        fault_type=FaultType.MIA,
        site_key="424242",
    )
    report = validate_faultload(Faultload("nt50", [bogus]))
    assert not report.ok
    assert report.errors()[0].code == "unresolvable"


def test_single_type_warning(scanned):
    only_mia = scanned.restrict_to_types([FaultType.MIA]).sample(5)
    report = validate_faultload(only_mia, resolve_limit=0)
    assert report.ok  # warnings don't invalidate
    assert any(f.code == "single-type" for f in report.warnings())


def test_inverted_mix_warning(scanned):
    wrong_heavy = scanned.restrict_to_types(
        [FaultType.WVAV, FaultType.WLEC, FaultType.MVI]
    )
    # Keep one MVI and all the wrong-construct ones.
    locations = [loc for loc in wrong_heavy
                 if loc.fault_type is not FaultType.MVI]
    locations += [loc for loc in wrong_heavy
                  if loc.fault_type is FaultType.MVI][:1]
    report = validate_faultload(
        Faultload("nt50", locations), resolve_limit=0
    )
    assert any(f.code == "mix-inverted" for f in report.warnings())


def test_resolve_limit_bounds_work(scanned):
    report = validate_faultload(scanned, resolve_limit=5)
    assert report.checked == 5


def test_report_renders(scanned):
    report = validate_faultload(scanned.sample(5), resolve_limit=0)
    text = str(report)
    assert "OK" in text or "INVALID" in text
