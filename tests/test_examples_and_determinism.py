"""Smoke tests for the example scripts and cross-process determinism."""

import json
import subprocess
import sys

import pytest


def _run(script, *args, timeout=240):
    return subprocess.run(
        [sys.executable, script, *args],
        capture_output=True, text=True, timeout=timeout, check=False,
    )


@pytest.mark.slow
def test_quickstart_example_runs():
    result = _run("examples/quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "Scanned" in result.stdout
    assert "errors accumulated" in result.stdout
    assert "pristine again" in result.stdout


@pytest.mark.slow
def test_custom_faultload_example_runs():
    result = _run("examples/custom_faultload.py")
    assert result.returncode == 0, result.stderr
    assert "Saved and reloaded" in result.stdout
    assert "--- pristine" in result.stdout


@pytest.mark.slow
def test_cli_run_command_small():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "run", "--server", "abyss",
         "--faults", "8", "--connections", "6"],
        capture_output=True, text=True, timeout=300, check=False,
    )
    assert result.returncode == 0, result.stderr
    assert "Table 5" in result.stdout
    assert "Dependability metrics" in result.stdout


def test_scan_is_identical_across_processes(tmp_path):
    """Saved faultloads are portable: two fresh interpreters scanning the
    same build must produce byte-identical JSON (the site-key stability
    the whole save/load workflow rests on)."""
    snippet = (
        "from repro.gswfit.scanner import scan_build;"
        "from repro.ossim.builds import NT50;"
        "import sys; sys.stdout.write(scan_build(NT50).to_json())"
    )
    outputs = []
    for _ in range(2):
        result = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, timeout=120, check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]
    parsed = json.loads(outputs[0])
    assert len(parsed["locations"]) > 200


def test_experiment_identical_across_processes():
    """A whole baseline run is bit-repeatable across interpreters."""
    snippet = (
        "from repro.harness import ExperimentConfig, WebServerExperiment;"
        "m = WebServerExperiment(ExperimentConfig.smoke()).run_baseline();"
        "print(m.total_ops, round(m.thr, 9), round(m.rtm_ms, 9))"
    )
    outputs = set()
    for _ in range(2):
        result = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, timeout=120, check=True,
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1
