"""Documentation coverage: every public item carries a docstring.

The library is meant to be adopted, so its public surface — every module,
every exported class, every public function and method — must be
documented.  This test walks the whole package and fails on any
undocumented public item, keeping the guarantee durable as the code
grows.
"""

import importlib
import inspect
import pkgutil

import repro

# FIT modules carry module docstrings but deliberately terse function
# bodies (the C-like style); their per-function docs are checked by the
# scanner tests, and helpers prefixed with _ are internal anyway.
_EXEMPT_PREFIXES = ()


def _walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if info.name == "repro.__main__":
            continue  # executing the CLI entry point is not importable
        modules.append(importlib.import_module(info.name))
    return modules


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__ for module in _walk_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert undocumented == []


def test_every_public_class_and_function_documented():
    missing = []
    for module in _walk_modules():
        for name in dir(module):
            if name.startswith("_"):
                continue
            obj = getattr(module, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == [], f"undocumented public items: {missing}"


def test_public_methods_documented_on_key_classes():
    from repro.faults.faultload import Faultload
    from repro.gswfit.injector import FaultInjector
    from repro.harness.experiment import WebServerExperiment
    from repro.profiling.usage import UsageTable
    from repro.specweb.client import SpecWebClient
    from repro.webservers.runtime import ServerRuntime

    missing = []
    for cls in (Faultload, FaultInjector, WebServerExperiment,
                UsageTable, SpecWebClient, ServerRuntime):
        for name, member in inspect.getmembers(
            cls, predicate=inspect.isfunction
        ):
            if name.startswith("_"):
                continue
            if not (member.__doc__ or "").strip():
                missing.append(f"{cls.__name__}.{name}")
    assert missing == [], f"undocumented public methods: {missing}"


def test_facade_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
