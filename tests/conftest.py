"""Shared fixtures for the test suite."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.ossim.builds import NT50, NT51
from repro.ossim.context import SimKernel
from repro.ossim.dispatch import OsInstance
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture(params=["nt50", "nt51"], ids=["nt50", "nt51"])
def build(request):
    """Parametrized over both OS builds."""
    return NT50 if request.param == "nt50" else NT51


@pytest.fixture
def os_instance(build):
    kernel = SimKernel()
    return OsInstance(build, kernel)


@pytest.fixture
def ctx(os_instance):
    """A process on a kernel with a small document tree."""
    vfs = os_instance.kernel.vfs
    vfs.mkdir("/site/dir0", parents=True)
    vfs.create_file("/site/dir0/index.html", size=4096)
    vfs.create_file("/site/dir0/small.txt", size=100)
    vfs.mkdir("/logs", parents=True)
    return os_instance.new_process(name="test")


@pytest.fixture
def smoke_config():
    return ExperimentConfig.smoke()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration scenario"
    )
