"""End-to-end integration tests of the faultload-definition pipeline."""

import pytest

from repro.harness.config import ExperimentConfig
from repro.pipeline import FaultloadPipeline, build_tuned_faultload


@pytest.fixture(scope="module")
def pipeline():
    config = ExperimentConfig.smoke()
    pipeline = FaultloadPipeline(config, profile_seconds=8.0)
    pipeline.run()
    return pipeline


def test_pipeline_produces_all_intermediates(pipeline):
    assert pipeline.raw_faultload is not None
    assert pipeline.usage_table is not None
    assert pipeline.tuned is not None


def test_tuning_is_a_restriction(pipeline):
    raw_ids = {loc.fault_id for loc in pipeline.raw_faultload}
    tuned_ids = {loc.fault_id for loc in pipeline.tuned}
    assert tuned_ids <= raw_ids
    assert 0 < len(tuned_ids) <= len(raw_ids)


def test_selected_functions_used_by_all_servers(pipeline):
    table = pipeline.usage_table
    for row in table.select_relevant():
        assert row.used_by_all(table.target_names), row.function


def test_server_specific_calls_excluded(pipeline):
    """Per-server idiosyncratic traffic must not survive intersection."""
    selected = set(pipeline.tuner.selected_functions())
    assert "RtlSizeHeap" not in selected        # apache-only
    assert "NtDelayExecution" not in selected   # savant-only
    assert "GetLastError" not in selected       # abyss+sambar only
    assert "NtQuerySystemTime" not in selected  # apache+savant only


def test_core_hot_functions_selected(pipeline):
    selected = set(pipeline.tuner.selected_functions())
    for name in ("RtlAllocateHeap", "RtlFreeHeap", "NtReadFile",
                 "NtClose", "RtlEnterCriticalSection",
                 "RtlDosPathNameToNtPathName_U"):
        assert name in selected, name


def test_coverage_is_substantial_but_not_total(pipeline):
    coverage = pipeline.usage_table.total_call_coverage()
    assert 60.0 < coverage < 99.0


def test_one_call_helper():
    config = ExperimentConfig.smoke()
    tuned = build_tuned_faultload(
        config, servers=("apache", "abyss"), profile_seconds=5.0
    )
    assert len(tuned) > 0


def test_tuned_faultload_counts_shape(pipeline):
    from repro.faults.types import FaultType

    counts = pipeline.tuned.counts_by_type()
    assert max(counts, key=counts.get) is FaultType.MIA
